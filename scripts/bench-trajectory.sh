#!/bin/sh
# Regenerate machine-readable benchmark results, compare them against
# the checked-in BENCH_*.json baselines with bench_gate, and append
# each run's records to the accumulated perf trajectory.
#
#   scripts/bench-trajectory.sh [--threshold X]
#
# The gate's threshold is deliberately generous (default 4.0x): the
# baselines were recorded on one machine and CI runs on another, so
# only algorithmic regressions should trip it. To (re)record a
# baseline after an intentional perf change:
#
#   cp target/bench-json/BENCH_store_aggregation.json BENCH_store_aggregation.json
#
# Every run also appends one line per bench to bench-trajectory.jsonl
# — `{"rev", "date", "bench", "records"}` — so the checked-in file
# accumulates the perf history across PRs. Set
# BENCH_TRAJECTORY_APPEND=0 to skip the append (e.g. for throwaway
# local runs).
set -eu
cd "$(dirname "$0")/.."

BENCHES="store_aggregation view_aggregation merged_store_aggregation"
TRAJECTORY="bench-trajectory.jsonl"
rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
mkdir -p target/bench-json
fail=0
for b in $BENCHES; do
    # Absolute path: cargo runs bench binaries from the package dir,
    # not the workspace root.
    out="$PWD/target/bench-json/BENCH_$b.json"
    rm -f "$out"
    CRITERION_JSON="$out" cargo bench -p mcf-bench --bench "$b" --offline
    if [ "${BENCH_TRAJECTORY_APPEND:-1}" != 0 ]; then
        printf '{"rev":"%s","date":"%s","bench":"%s","records":%s}\n' \
            "$rev" "$date" "$b" "$(tr -d '\n' < "$out")" >> "$TRAJECTORY"
    fi
    # Machine-relative scaling shape: over-sharding must never lose
    # to the serial path (the kernel caps shard requests to the
    # hardware, so shards_8 on any host should track shards_1).
    case $b in
    store_aggregation)
        scaling="--assert-scaling store_aggregation/aggregate_shards_8:store_aggregation/aggregate_shards_1:1.10"
        ;;
    view_aggregation)
        scaling="--assert-scaling view_aggregation/aggregate_by_shards_8:view_aggregation/aggregate_by_shards_1:1.10"
        ;;
    merged_store_aggregation)
        scaling="--assert-scaling merged_store_aggregation/aggregate_shards_8:merged_store_aggregation/aggregate_shards_1:1.10 \
                 --assert-scaling merged_store_aggregation/merge_shards_4:merged_store_aggregation/merge_shards_1:1.10"
        ;;
    *) scaling="" ;;
    esac
    if [ -f "BENCH_$b.json" ]; then
        # shellcheck disable=SC2086  # $scaling is a flag list
        cargo run -q --release --offline -p mcf-bench --bin bench_gate -- \
            "BENCH_$b.json" "$out" $scaling "$@" || fail=1
    else
        echo "bench-trajectory: no baseline BENCH_$b.json checked in;"
        echo "  cp $out BENCH_$b.json   # to record one"
        fail=1
    fi
done
if [ "${BENCH_TRAJECTORY_APPEND:-1}" != 0 ]; then
    echo "bench-trajectory: appended $(echo "$BENCHES" | wc -w | tr -d ' ') runs to $TRAJECTORY ($(wc -l < "$TRAJECTORY" | tr -d ' ') lines total)"
fi
exit $fail
