//! # memprof — data-centric memory profiling with (simulated) hardware counters
//!
//! A full reproduction of *Memory Profiling using Hardware Counters*
//! (Itzkowitz, Wylie, Aoki, Kosche; SC 2003) as a Rust workspace. This
//! facade crate re-exports the public API of every subsystem:
//!
//! * [`isa`] — the SimSPARC instruction set and disassembler,
//! * [`machine`] — the simulated UltraSPARC-III-like CPU, caches, DTLB
//!   and overflow-profiling hardware counters (with trap skid),
//! * [`minic`] — the mini-C compiler with `-xhwcprof`-style symbol
//!   cross-references, branch-target tables and nop padding,
//! * [`profiler`] — the paper's contribution: the collector (apropos
//!   backtracking, effective-address reconstruction, experiments) and
//!   the analyzer (function/PC/source/disassembly views and
//!   data-object aggregation),
//! * [`mcf`] — the MCF network-simplex benchmark written in mini-C,
//!   with an instance generator and a pure-Rust min-cost-flow oracle,
//! * [`store`] — the packed binary experiment store, streaming reader
//!   and parallel multi-experiment aggregation (merge/diff) engine,
//! * [`serve`] — the always-on aggregation service: the `mp-serve`
//!   daemon's wire protocol, multi-collector ingest, tiered
//!   compaction and query layer.
//!
//! See `examples/quickstart.rs` for the three-step compile → collect →
//! analyze user model of §2 of the paper.

pub use memprof_core as profiler;
pub use memprof_opt as opt;
pub use memprof_serve as serve;
pub use memprof_store as store;
pub use minic;
pub use simsparc_isa as isa;
pub use simsparc_machine as machine;

pub use mcf;
