//! Disassembler producing listings in the style of the paper's
//! Figure 4 (`er_print` annotated disassembly): pseudo-ops like `cmp`,
//! `mov` and `ret` are recognized, branches show `,a`/`,pt`/`,pn`
//! suffixes and absolute targets.

use std::fmt;

use crate::insn::{AluOp, Cond, Insn, MemWidth, Operand};
use crate::reg::Reg;

/// An instruction paired with its PC, for `Display` formatting.
///
/// ```
/// use simsparc_isa::{DisasmInsn, Insn, Reg, Operand};
/// let d = DisasmInsn { insn: Insn::cmp(Reg::O2, Operand::Imm(1)), pc: 0x100 };
/// assert_eq!(d.to_string(), "cmp  %o2, 1");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DisasmInsn {
    pub insn: Insn,
    pub pc: u64,
}

impl fmt::Display for DisasmInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_insn(&self.insn, self.pc, f)
    }
}

/// Disassemble one instruction located at `pc` (the PC is needed to
/// print absolute branch/call targets).
pub fn disasm(insn: &Insn, pc: u64) -> String {
    DisasmInsn { insn: *insn, pc }.to_string()
}

fn mem_operand(rs1: Reg, op2: Operand) -> String {
    match op2 {
        Operand::Imm(0) => format!("[{rs1}]"),
        Operand::Imm(v) if v < 0 => format!("[{rs1} - {}]", -(v as i32)),
        Operand::Imm(v) => format!("[{rs1} + {v}]"),
        Operand::Reg(r) => format!("[{rs1} + {r}]"),
    }
}

fn op2_str(op2: Operand) -> String {
    match op2 {
        Operand::Imm(v) => v.to_string(),
        Operand::Reg(r) => r.to_string(),
    }
}

fn load_mnemonic(width: MemWidth, signed: bool) -> &'static str {
    match (width, signed) {
        (MemWidth::B, false) => "ldub",
        (MemWidth::B, true) => "ldsb",
        (MemWidth::H, false) => "lduh",
        (MemWidth::H, true) => "ldsh",
        (MemWidth::W, false) => "lduw",
        (MemWidth::W, true) => "ldsw",
        (MemWidth::X, _) => "ldx",
    }
}

fn store_mnemonic(width: MemWidth) -> &'static str {
    match width {
        MemWidth::B => "stb",
        MemWidth::H => "sth",
        MemWidth::W => "stw",
        MemWidth::X => "stx",
    }
}

fn fmt_insn(insn: &Insn, pc: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match *insn {
        Insn::Nop => f.write_str("nop"),
        Insn::Sethi { imm21, rd } => {
            write!(f, "sethi  %hi({:#x}), {rd}", (imm21 as u64) << 11)
        }
        Insn::Branch {
            cond,
            annul,
            pred_taken,
            disp,
        } => {
            let target = pc.wrapping_add_signed(disp as i64 * 4);
            if cond == Cond::A && !annul {
                // Unconditional branches print without hints, as in Fig. 4.
                write!(f, "ba   {target:#x}")
            } else {
                let a = if annul { ",a" } else { "" };
                let hint = if pred_taken { ",pt" } else { ",pn" };
                write!(f, "{}{a}{hint}  %xcc,{target:#x}", cond.mnemonic())
            }
        }
        Insn::Call { disp } => {
            let target = pc.wrapping_add_signed(disp as i64 * 4);
            write!(f, "call {target:#x}")
        }
        Insn::Trap { num } => write!(f, "ta   {num}"),
        Insn::Jmpl { rs1, op2, rd } => {
            if *insn == Insn::ret() {
                f.write_str("ret")
            } else {
                write!(f, "jmpl {}, {rd}", mem_operand(rs1, op2))
            }
        }
        Insn::Prefetch { rs1, op2 } => {
            write!(f, "prefetch {}", mem_operand(rs1, op2))
        }
        Insn::Alu {
            op,
            cc,
            rs1,
            op2,
            rd,
        } => {
            // Pseudo-ops, in the order er_print prefers them.
            if op == AluOp::Sub && cc && rd.is_zero() {
                return write!(f, "cmp  {rs1}, {}", op2_str(op2));
            }
            if op == AluOp::Or && !cc && rs1.is_zero() {
                return write!(f, "mov  {}, {rd}", op2_str(op2));
            }
            if op == AluOp::Add && !cc && matches!(op2, Operand::Imm(1)) && rs1 == rd {
                return write!(f, "inc  {rd}");
            }
            let ccs = if cc { "cc" } else { "" };
            write!(f, "{}{ccs}  {rs1}, {}, {rd}", op.mnemonic(), op2_str(op2))
        }
        Insn::Load {
            width,
            signed,
            rs1,
            op2,
            rd,
        } => write!(
            f,
            "{}  {}, {rd}",
            load_mnemonic(width, signed),
            mem_operand(rs1, op2)
        ),
        Insn::Store {
            width,
            src,
            rs1,
            op2,
        } => write!(
            f,
            "{}  {src}, {}",
            store_mnemonic(width),
            mem_operand(rs1, op2)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_style_listing() {
        // Shapes from Figure 4 of the paper.
        assert_eq!(
            disasm(&Insn::load_x(Reg::O3, Operand::Imm(56), Reg::O2), 0),
            "ldx  [%o3 + 56], %o2"
        );
        assert_eq!(
            disasm(&Insn::store_x(Reg::G2, Reg::O3, Operand::Imm(88)), 0),
            "stx  %g2, [%o3 + 88]"
        );
        assert_eq!(
            disasm(&Insn::cmp(Reg::O2, Operand::Imm(1)), 0),
            "cmp  %o2, 1"
        );
        assert_eq!(
            disasm(&Insn::mov(Operand::Reg(Reg::O3), Reg::O5), 0),
            "mov  %o3, %o5"
        );
        assert_eq!(
            disasm(
                &Insn::alu(AluOp::Add, Reg::G1, Operand::Reg(Reg::G5), Reg::G2),
                0
            ),
            "add  %g1, %g5, %g2"
        );
        assert_eq!(disasm(&Insn::Nop, 0), "nop");
        assert_eq!(disasm(&Insn::ret(), 0), "ret");
    }

    #[test]
    fn branch_targets_are_absolute() {
        let b = Insn::Branch {
            cond: Cond::Ne,
            annul: false,
            pred_taken: false,
            disp: -42,
        };
        let s = disasm(&b, 0x100003110 + 42 * 4);
        assert_eq!(s, "bne,pn  %xcc,0x100003110");

        let ba = Insn::Branch {
            cond: Cond::A,
            annul: false,
            pred_taken: false,
            disp: 12,
        };
        assert_eq!(disasm(&ba, 0x1000031e8), "ba   0x100003218");
    }

    #[test]
    fn inc_pseudo_op() {
        let inc = Insn::alu(AluOp::Add, Reg::G3, Operand::Imm(1), Reg::G3);
        assert_eq!(disasm(&inc, 0), "inc  %g3");
        // Not an inc when source and dest differ.
        let add = Insn::alu(AluOp::Add, Reg::G3, Operand::Imm(1), Reg::G4);
        assert_eq!(disasm(&add, 0), "add  %g3, 1, %g4");
    }

    #[test]
    fn negative_mem_offset() {
        let st = Insn::store_x(Reg::L0, Reg::Sp, Operand::Imm(-16));
        assert_eq!(disasm(&st, 0), "stx  %l0, [%sp - 16]");
    }

    #[test]
    fn zero_offset_omitted() {
        let ld = Insn::load_x(Reg::G4, Operand::Imm(0), Reg::G1);
        assert_eq!(disasm(&ld, 0), "ldx  [%g4], %g1");
    }
    #[test]
    fn remaining_instruction_forms() {
        assert_eq!(
            disasm(
                &Insn::Sethi {
                    imm21: 0x40000,
                    rd: Reg::G1
                },
                0
            ),
            "sethi  %hi(0x20000000), %g1"
        );
        assert_eq!(disasm(&Insn::Trap { num: 16 }, 0), "ta   16");
        assert_eq!(
            disasm(
                &Insn::Jmpl {
                    rs1: Reg::G1,
                    op2: Operand::Imm(0),
                    rd: Reg::O7
                },
                0
            ),
            "jmpl [%g1], %o7"
        );
        assert_eq!(
            disasm(
                &Insn::Prefetch {
                    rs1: Reg::G4,
                    op2: Operand::Reg(Reg::G2)
                },
                0
            ),
            "prefetch [%g4 + %g2]"
        );
        assert_eq!(disasm(&Insn::Call { disp: 4 }, 0x100), "call 0x110");
        let sr = Insn::alu(AluOp::Srl, Reg::G1, Operand::Imm(4), Reg::G2);
        assert_eq!(disasm(&sr, 0), "srlx  %g1, 4, %g2");
        let lduw = Insn::Load {
            width: crate::insn::MemWidth::W,
            signed: false,
            rs1: Reg::G1,
            op2: Operand::Imm(12),
            rd: Reg::G2,
        };
        assert_eq!(disasm(&lduw, 0), "lduw  [%g1 + 12], %g2");
        let annulled = Insn::Branch {
            cond: Cond::E,
            annul: true,
            pred_taken: true,
            disp: 2,
        };
        assert_eq!(disasm(&annulled, 0x100), "be,a,pt  %xcc,0x108");
        // ba with annul prints with its suffixes too.
        let baa = Insn::Branch {
            cond: Cond::A,
            annul: true,
            pred_taken: true,
            disp: 2,
        };
        assert_eq!(disasm(&baa, 0x100), "ba,a,pt  %xcc,0x108");
    }
}
