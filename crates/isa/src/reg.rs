//! The integer register file: 32 64-bit registers with SPARC names.
//!
//! `%g0` reads as zero and ignores writes, exactly as on SPARC; the
//! disassembler and the collector's effective-address reconstruction
//! both rely on that. There are no register windows — `%o`/`%l`/`%i`
//! are just names, and the calling convention (documented in `minic`)
//! treats `%l0..%l7` and `%i0..%i5` as callee-saved.

use std::fmt;

/// One of the 32 integer registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[repr(u8)]
#[rustfmt::skip]
pub enum Reg {
    G0 = 0,  G1, G2, G3, G4, G5, G6, G7,
    O0 = 8,  O1, O2, O3, O4, O5, Sp, O7,
    L0 = 16, L1, L2, L3, L4, L5, L6, L7,
    I0 = 24, I1, I2, I3, I4, I5, Fp, I7,
}

impl Reg {
    /// All 32 registers in index order.
    pub const ALL: [Reg; 32] = {
        let mut a = [Reg::G0; 32];
        let mut i = 0u8;
        while i < 32 {
            a[i as usize] = Reg::from_index(i);
            i += 1;
        }
        a
    };

    /// The stack pointer alias (`%o6`).
    pub const SP: Reg = Reg::Sp;
    /// The frame pointer alias (`%i6`).
    pub const FP: Reg = Reg::Fp;
    /// The link register written by `call` (`%o7`).
    pub const LINK: Reg = Reg::O7;

    /// Register number, 0..=31.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Build a register from its number. Panics if `i >= 32`.
    #[inline]
    pub const fn from_index(i: u8) -> Reg {
        assert!(i < 32, "register index out of range");
        // SAFETY-free: match keeps this const-evaluable and panic-checked.
        #[rustfmt::skip]
        const TABLE: [Reg; 32] = [
            Reg::G0, Reg::G1, Reg::G2, Reg::G3, Reg::G4, Reg::G5, Reg::G6, Reg::G7,
            Reg::O0, Reg::O1, Reg::O2, Reg::O3, Reg::O4, Reg::O5, Reg::Sp, Reg::O7,
            Reg::L0, Reg::L1, Reg::L2, Reg::L3, Reg::L4, Reg::L5, Reg::L6, Reg::L7,
            Reg::I0, Reg::I1, Reg::I2, Reg::I3, Reg::I4, Reg::I5, Reg::Fp, Reg::I7,
        ];
        TABLE[i as usize]
    }

    /// True for `%g0`, which is hard-wired to zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        matches!(self, Reg::G0)
    }

    /// SPARC assembly name, e.g. `%o3`, `%sp`, `%fp`.
    pub const fn name(self) -> &'static str {
        #[rustfmt::skip]
        const NAMES: [&str; 32] = [
            "%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
            "%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
            "%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
            "%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
        ];
        NAMES[self as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..32u8 {
            assert_eq!(Reg::from_index(i).index(), i as usize);
        }
    }

    #[test]
    fn aliases() {
        assert_eq!(Reg::SP.index(), 14);
        assert_eq!(Reg::FP.index(), 30);
        assert_eq!(Reg::LINK.index(), 15);
        assert_eq!(Reg::SP.name(), "%sp");
        assert_eq!(Reg::Fp.name(), "%fp");
    }

    #[test]
    fn only_g0_is_zero() {
        let zeros: Vec<Reg> = Reg::ALL.iter().copied().filter(|r| r.is_zero()).collect();
        assert_eq!(zeros, vec![Reg::G0]);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Reg::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = Reg::from_index(32);
    }
}
