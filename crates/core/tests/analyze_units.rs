//! Deterministic analyzer tests over a hand-built symbol table and
//! synthetic experiments: every branch of the §2.3 validation logic,
//! the §3.2.5 taxonomy, and the callers/callees attribution.

use memprof_core::analyze::{validate, Analysis, Attribution, UnknownKind};
use memprof_core::{ClockEvent, CounterRequest, Experiment, HwcEvent, RunInfo};
use minic::{FuncSym, GlobalSym, MemDesc, ModuleSym, PcMeta, SymbolTable};
use simsparc_machine::CounterEvent;

const BASE: u64 = 0x1_0000_0000;

/// Layout (4-byte PCs from BASE):
///   module 0 "good.c"  (hwcprof+dwarf): f at [0..10), g at [10..16)
///   module 1 "libc.c"  (no hwcprof):    libfn at [16..20)
///   module 2 "stabs.c" (hwcprof, no dwarf): h at [20..24)
fn table() -> SymbolTable {
    let meta = |memdesc: MemDesc, bt: bool| PcMeta {
        line: 1,
        memdesc,
        is_branch_target: bt,
    };
    let member = |m: &str, off: u64| MemDesc::Member {
        struct_name: "node".to_string(),
        member: m.to_string(),
        member_type: "long".to_string(),
        offset: off,
    };
    let mut pc_meta = vec![
        // f: idx 0..10
        meta(member("alpha", 0), true),   // 0: entry, load
        meta(MemDesc::None, false),       // 1
        meta(member("beta", 8), false),   // 2: load
        meta(MemDesc::None, false),       // 3
        meta(MemDesc::None, true),        // 4: loop head (branch target)
        meta(member("gamma", 16), false), // 5: load
        meta(MemDesc::Temporary, false),  // 6: spill
        meta(MemDesc::None, false),       // 7 (no symbolic ref)
        meta(MemDesc::None, false),       // 8
        meta(MemDesc::None, false),       // 9
        // g: idx 10..16
        meta(member("delta", 24), true), // 10: entry
        meta(MemDesc::None, false),      // 11
        meta(MemDesc::None, false),      // 12
        meta(MemDesc::None, false),      // 13
        meta(MemDesc::None, false),      // 14
        meta(MemDesc::None, false),      // 15
    ];
    // libc (module without hwcprof): meta present but ignored.
    for _ in 16..20 {
        pc_meta.push(meta(MemDesc::None, false));
    }
    // stabs module (hwcprof but no dwarf).
    for i in 20..24 {
        pc_meta.push(meta(member("eps", 32), i == 20));
    }

    SymbolTable {
        modules: vec![
            ModuleSym {
                name: "good.c".into(),
                hwcprof: true,
                dwarf: true,
                source: "line one\n".into(),
            },
            ModuleSym {
                name: "libc.c".into(),
                hwcprof: false,
                dwarf: false,
                source: String::new(),
            },
            ModuleSym {
                name: "stabs.c".into(),
                hwcprof: true,
                dwarf: false,
                source: String::new(),
            },
        ],
        funcs: vec![
            FuncSym {
                name: "f".into(),
                entry: BASE,
                end: BASE + 40,
                module: 0,
                line: 1,
            },
            FuncSym {
                name: "g".into(),
                entry: BASE + 40,
                end: BASE + 64,
                module: 0,
                line: 5,
            },
            FuncSym {
                name: "libfn".into(),
                entry: BASE + 64,
                end: BASE + 80,
                module: 1,
                line: 1,
            },
            FuncSym {
                name: "h".into(),
                entry: BASE + 80,
                end: BASE + 96,
                module: 2,
                line: 1,
            },
        ],
        pc_meta,
        text_base: BASE,
        structs: vec![],
        globals: vec![GlobalSym {
            name: "x".into(),
            addr: 0x2000_0000,
            size: 8,
            type_desc: "long".into(),
        }],
    }
}

fn pc(idx: u64) -> u64 {
    BASE + idx * 4
}

#[test]
fn validation_accepts_clean_candidates() {
    let t = table();
    // Candidate at idx 2 (load of beta), delivered at idx 4 is BLOCKED
    // (idx 4 is a branch target); delivered at idx 3 is clean.
    match validate(&t, Some(pc(2)), pc(3)) {
        Attribution::DataObject { pc: p, desc } => {
            assert_eq!(p, pc(2));
            assert!(matches!(desc, MemDesc::Member { member, .. } if member == "beta"));
        }
        other => panic!("expected DataObject, got {other:?}"),
    }
}

#[test]
fn validation_blocks_on_branch_target() {
    let t = table();
    match validate(&t, Some(pc(2)), pc(5)) {
        Attribution::Unknown { pc: p, kind } => {
            assert_eq!(kind, UnknownKind::Unresolvable);
            assert_eq!(p, pc(4), "attributed to the artificial branch-target PC");
        }
        other => panic!("expected Unresolvable, got {other:?}"),
    }
    // The artificial PC is flagged as such.
    let a = validate(&t, Some(pc(2)), pc(5));
    assert!(a.is_artificial());
}

#[test]
fn validation_blocks_when_delivered_is_a_branch_target() {
    // The delivered PC itself being a branch target means control
    // could have arrived via the branch (the Figure 4 asterisk rows).
    let t = table();
    match validate(&t, Some(pc(3)), pc(4)) {
        Attribution::Unknown { pc: p, kind } => {
            assert_eq!(kind, UnknownKind::Unresolvable);
            assert_eq!(p, pc(4));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn taxonomy_unascertainable_for_non_hwcprof_module() {
    let t = table();
    match validate(&t, Some(pc(17)), pc(18)) {
        Attribution::Unknown { kind, .. } => assert_eq!(kind, UnknownKind::Unascertainable),
        other => panic!("{other:?}"),
    }
}

#[test]
fn taxonomy_unverifiable_for_non_dwarf_module() {
    let t = table();
    match validate(&t, Some(pc(21)), pc(22)) {
        Attribution::Unknown { kind, .. } => assert_eq!(kind, UnknownKind::Unverifiable),
        other => panic!("{other:?}"),
    }
}

#[test]
fn taxonomy_unresolvable_when_no_candidate() {
    let t = table();
    match validate(&t, None, pc(3)) {
        Attribution::Unknown { pc: p, kind } => {
            assert_eq!(kind, UnknownKind::Unresolvable);
            assert_eq!(p, pc(3));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn taxonomy_unidentified_and_unspecified() {
    let t = table();
    match validate(&t, Some(pc(6)), pc(7)) {
        Attribution::Unknown { kind, .. } => assert_eq!(kind, UnknownKind::Unidentified),
        other => panic!("{other:?}"),
    }
    match validate(&t, Some(pc(7)), pc(8)) {
        Attribution::Unknown { kind, .. } => assert_eq!(kind, UnknownKind::Unspecified),
        other => panic!("{other:?}"),
    }
}

fn event(counter: usize, cand: Option<u64>, delivered: u64, stack: Vec<u64>) -> HwcEvent {
    HwcEvent {
        counter,
        delivered_pc: delivered,
        candidate_pc: cand,
        ea: Some(0x4000_0000),
        callstack: stack,
        truth_trigger_pc: cand.unwrap_or(delivered),
        truth_ea: Some(0x4000_0000),
        truth_skid: 1,
    }
}

fn experiment(hwc: Vec<HwcEvent>, clock: Vec<ClockEvent>) -> Experiment {
    Experiment {
        counters: vec![CounterRequest {
            event: CounterEvent::ECReadMiss,
            backtrack: true,
            interval: 100,
        }],
        clock_period: (!clock.is_empty()).then_some(1000),
        hwc_events: hwc,
        clock_events: clock,
        run: RunInfo {
            clock_hz: 900_000_000,
            dropped: vec![0],
            ..RunInfo::default()
        },
        log: vec![],
    }
}

#[test]
fn function_attribution_and_artificial_rows() {
    let t = table();
    let exp = experiment(
        vec![
            event(0, Some(pc(2)), pc(3), vec![]),   // valid, in f
            event(0, Some(pc(2)), pc(5), vec![]),   // blocked -> artificial at idx4 (in f)
            event(0, Some(pc(10)), pc(11), vec![]), // valid, in g
        ],
        vec![],
    );
    let a = Analysis::new(&[&exp], &t);
    let rows = a.function_list(0);
    assert_eq!(rows[0].name, "<Total>");
    assert_eq!(rows[0].samples[0], 3);
    let f_row = rows.iter().find(|r| r.name == "f").unwrap();
    assert_eq!(f_row.samples[0], 2, "valid + artificial both land in f");
    let g_row = rows.iter().find(|r| r.name == "g").unwrap();
    assert_eq!(g_row.samples[0], 1);

    // The disassembly view shows the artificial row with its metric.
    let dis = a.annotated_disasm("f").unwrap();
    let artificial: Vec<_> = dis.iter().filter(|r| r.artificial).collect();
    assert!(artificial
        .iter()
        .any(|r| r.pc == pc(4) && r.samples[0] == 1));
}

#[test]
fn data_object_view_counts_by_member_struct() {
    let t = table();
    let exp = experiment(
        vec![
            event(0, Some(pc(0)), pc(1), vec![]),   // alpha
            event(0, Some(pc(2)), pc(3), vec![]),   // beta
            event(0, Some(pc(2)), pc(3), vec![]),   // beta again
            event(0, Some(pc(6)), pc(7), vec![]),   // Temporary -> Unidentified
            event(0, Some(pc(17)), pc(18), vec![]), // libc -> Unascertainable
        ],
        vec![],
    );
    let a = Analysis::new(&[&exp], &t);
    let rows = a.data_objects(0);
    let get = |n: &str| rows.iter().find(|r| r.name == n).map(|r| r.samples[0]);
    assert_eq!(get("<Total>"), Some(5));
    assert_eq!(get("{structure:node -}"), Some(3));
    assert_eq!(get("(Unidentified)"), Some(1));
    assert_eq!(get("(Unascertainable)"), Some(1));
    assert_eq!(get("<Unknown>"), Some(2));

    // Effectiveness: 1 unascertainable of 5 events = 80%.
    let eff = &a.effectiveness()[0];
    assert_eq!(eff.total, 5);
    assert_eq!(eff.unascertainable, 1);
    assert_eq!(eff.unresolvable, 0);
    assert!((eff.effectiveness_pct - 80.0).abs() < 1e-9);
}

#[test]
fn callers_and_inclusive_attribution() {
    let t = table();
    // Two events in g: one called from f (callstack has a call site in
    // f), one called from libfn.
    let exp = experiment(
        vec![
            event(0, Some(pc(10)), pc(11), vec![pc(3)]),  // f -> g
            event(0, Some(pc(10)), pc(11), vec![pc(17)]), // libfn -> g
            event(0, Some(pc(2)), pc(3), vec![]),         // f leaf
        ],
        vec![ClockEvent {
            pc: pc(11),
            callstack: vec![pc(3)],
        }],
    );
    let a = Analysis::new(&[&exp], &t);

    let callers = a.callers_of("g");
    let get = |n: &str| {
        callers
            .iter()
            .find(|r| r.name == n)
            .map(|r| r.samples.iter().sum::<u64>())
    };
    assert_eq!(get("f"), Some(2), "hwc + clock events from f");
    assert_eq!(get("libfn"), Some(1));

    // Callees of f: the leaf event is <self>, plus g via the call.
    let callees = a.callees_of("f");
    let cget = |n: &str| {
        callees
            .iter()
            .find(|r| r.name == n)
            .map(|r| r.samples.iter().sum::<u64>())
    };
    assert_eq!(cget("<self>"), Some(1));
    assert_eq!(cget("g"), Some(2), "hwc + clock events flow f -> g");

    // The rendered view mentions all parties.
    let rendered = a.render_callers_callees("g");
    assert!(rendered.contains("Callers of `g`"), "{rendered}");
    assert!(rendered.contains("libfn"), "{rendered}");
    assert!(rendered.contains("(inclusive)"), "{rendered}");

    // Inclusive of f: its own leaf event + everything through it.
    let incl = a.inclusive_of("f");
    assert_eq!(incl.iter().sum::<u64>(), 3, "leaf + f->g hwc + f->g clock");
    let incl_g = a.inclusive_of("g");
    assert_eq!(
        incl_g.iter().sum::<u64>(),
        3,
        "all g leaf events (2 hwc + 1 clock)"
    );
}

#[test]
fn address_views_group_by_ea() {
    let t = table();
    let mut e1 = event(0, Some(pc(0)), pc(1), vec![]);
    e1.ea = Some(0x4000_0000); // heap
    let mut e2 = event(0, Some(pc(2)), pc(3), vec![]);
    e2.ea = Some(0x4000_0008); // same node instance (beta at +8)
    let mut e3 = event(0, Some(pc(2)), pc(3), vec![]);
    e3.ea = Some(0x2000_0000); // data segment
    let mut e4 = event(0, Some(pc(2)), pc(3), vec![]);
    e4.ea = None; // unreconstructable
    let exp = experiment(vec![e1, e2, e3, e4], vec![]);
    let a = Analysis::new(&[&exp], &t);

    let segs = a.segments();
    let heap = segs
        .iter()
        .find(|s| s.segment == simsparc_machine::SegmentKind::Heap)
        .unwrap();
    assert_eq!(heap.samples[0], 2);
    let data = segs
        .iter()
        .find(|s| s.segment == simsparc_machine::SegmentKind::Data)
        .unwrap();
    assert_eq!(data.samples[0], 1);

    let lines = a.cache_lines(512, 10);
    assert_eq!(lines[0].line_base, 0x4000_0000);
    assert_eq!(lines[0].samples[0], 2);
}

#[test]
fn unresolvable_events_contribute_no_ea_to_address_views() {
    let t = table();
    // Candidate idx 2 -> delivered idx 5 crosses the loop head at idx 4,
    // so validation yields Unresolvable. Even if the collector recorded
    // an EA (as pre-fix collectors did), the address views must not use
    // it: the access may never have executed.
    let mut blocked = event(0, Some(pc(2)), pc(5), vec![]);
    blocked.ea = Some(0x4000_0000);
    let mut clean = event(0, Some(pc(0)), pc(1), vec![]);
    clean.ea = Some(0x4000_0200);
    let exp = experiment(vec![blocked, clean], vec![]);
    let a = Analysis::new(&[&exp], &t);

    let segs = a.segments();
    let heap = segs
        .iter()
        .find(|s| s.segment == simsparc_machine::SegmentKind::Heap)
        .unwrap();
    assert_eq!(heap.samples[0], 1, "only the clean event has an address");
    let lines = a.cache_lines(64, 10);
    assert_eq!(lines.len(), 1);
    assert_eq!(lines[0].line_base, 0x4000_0200);

    // The event itself is still counted -- as an Unresolvable row.
    let eff = &a.effectiveness()[0];
    assert_eq!(eff.total, 2);
    assert_eq!(eff.unresolvable, 1);
}

#[test]
fn hot_lines_aggregate_per_function_line() {
    let t = table();
    // Two events at different PCs in f sharing line 1 (all meta lines
    // are 1 in the fixture) plus one in g.
    let exp = experiment(
        vec![
            event(0, Some(pc(0)), pc(1), vec![]),
            event(0, Some(pc(2)), pc(3), vec![]),
            event(0, Some(pc(10)), pc(11), vec![]),
        ],
        vec![],
    );
    let a = Analysis::new(&[&exp], &t);
    let rows = a.hot_lines(0, 10);
    assert_eq!(rows.len(), 2, "{rows:?}");
    assert_eq!(rows[0].function, "f");
    assert_eq!(rows[0].samples[0], 2);
    assert_eq!(rows[0].text, "line one");
    assert_eq!(rows[1].function, "g");
}
