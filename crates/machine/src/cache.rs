//! Set-associative cache model with true-LRU replacement.
//!
//! Used for the D$ (64 KB / 4-way / 32 B lines), the E$ (8 MB / 2-way /
//! 512 B lines) and the I$ (32 KB / 4-way / 32 B lines) of the
//! simulated Sun Fire 280R. The model tracks tags only — data flows
//! through the flat [`crate::Memory`] — because the paper's metrics
//! depend on hit/miss behaviour, not on cached values.

/// Geometry of one cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.bytes / self.line_bytes / self.ways as u64
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    Hit,
    Miss,
}

/// A set-associative, true-LRU, write-allocate cache.
pub struct SetAssocCache {
    line_shift: u32,
    set_mask: u64,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU age per way (0 = most recently used).
    ages: Vec<u8>,
    hits: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    pub fn new(config: CacheConfig) -> SetAssocCache {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = config.sets();
        assert!(
            sets.is_power_of_two() && sets > 0,
            "set count must be a power of two"
        );
        assert!(config.ways >= 1 && config.ways <= 16);
        let total = (sets as usize) * config.ways as usize;
        SetAssocCache {
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            ways: config.ways as usize,
            tags: vec![INVALID; total],
            ages: vec![0; total],
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// Access the line containing `addr`, allocating it on a miss.
    #[inline]
    pub fn access(&mut self, addr: u64) -> CacheOutcome {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        let tags = &mut self.tags[base..base + self.ways];
        let ages = &mut self.ages[base..base + self.ways];

        // Hit path: bump the touched way to MRU.
        for w in 0..tags.len() {
            if tags[w] == line {
                let age = ages[w];
                for a in ages.iter_mut() {
                    if *a < age {
                        *a += 1;
                    }
                }
                ages[w] = 0;
                self.hits += 1;
                return CacheOutcome::Hit;
            }
        }

        // Miss: fill an invalid way if one exists, else evict true LRU.
        // Age every resident way and insert the new line as MRU.
        let victim = match tags.iter().position(|&t| t == INVALID) {
            Some(w) => w,
            None => (0..tags.len()).max_by_key(|&w| ages[w]).unwrap(),
        };
        for a in ages.iter_mut() {
            *a = a.saturating_add(1);
        }
        tags[victim] = line;
        ages[victim] = 0;
        self.misses += 1;
        CacheOutcome::Miss
    }

    /// Probe without touching LRU state or counting (used by software
    /// prefetch and by tests).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 32-byte lines = 128 bytes.
        SetAssocCache::new(CacheConfig {
            bytes: 128,
            ways: 2,
            line_bytes: 32,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig {
            bytes: 64 * 1024,
            ways: 4,
            line_bytes: 32,
        };
        assert_eq!(c.sets(), 512);
        let e = CacheConfig {
            bytes: 8 * 1024 * 1024,
            ways: 2,
            line_bytes: 512,
        };
        assert_eq!(e.sets(), 8192);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0), CacheOutcome::Miss);
        assert_eq!(c.access(31), CacheOutcome::Hit); // same line
        assert_eq!(c.access(32), CacheOutcome::Miss); // next line, set 1
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines whose line-number is even (2 sets).
        let a = 0u64; // line 0, set 0
        let b = 64; // line 2, set 0
        let d = 128; // line 4, set 0
        assert_eq!(c.access(a), CacheOutcome::Miss);
        assert_eq!(c.access(b), CacheOutcome::Miss);
        // Touch `a` so `b` is LRU.
        assert_eq!(c.access(a), CacheOutcome::Hit);
        // `d` evicts `b`.
        assert_eq!(c.access(d), CacheOutcome::Miss);
        assert_eq!(c.access(a), CacheOutcome::Hit);
        assert_eq!(c.access(b), CacheOutcome::Miss);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut c = tiny();
        c.access(0);
        let stats = c.stats();
        assert!(c.probe(16));
        assert!(!c.probe(64));
        assert_eq!(c.stats(), stats);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        // 64KB 4-way: any 16 distinct lines mapping to the same set fit in 4 ways?
        // Use a full-cache sweep instead: 2048 lines fit exactly.
        let mut c = SetAssocCache::new(CacheConfig {
            bytes: 64 * 1024,
            ways: 4,
            line_bytes: 32,
        });
        for i in 0..2048u64 {
            assert_eq!(c.access(i * 32), CacheOutcome::Miss);
        }
        for i in 0..2048u64 {
            assert_eq!(c.access(i * 32), CacheOutcome::Hit, "line {i}");
        }
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = tiny(); // 4 lines total
        for round in 0..3 {
            for i in 0..8u64 {
                assert_eq!(
                    c.access(i * 32),
                    CacheOutcome::Miss,
                    "round {round} line {i}"
                );
            }
        }
    }
}
