//! Hand-written lexer for mini-C: C-style `//` and `/* */` comments,
//! decimal and hex integer literals, identifiers and the operator set.

use crate::error::{CompileError, Result};
use crate::token::{Tok, Token};

/// Tokenize `src`; `module` names the source in error messages.
pub fn lex(src: &str, module: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(src.len() / 4);
    let mut i = 0;
    let mut line: u32 = 1;

    macro_rules! push {
        ($kind:expr) => {
            out.push(Token { kind: $kind, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::lex(module, line, "unterminated comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let (radix, digits_start) =
                    if c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                        i += 2;
                        (16u32, i)
                    } else {
                        (10, i)
                    };
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let text = &src[digits_start..i];
                let v = i64::from_str_radix(text, radix).map_err(|_| {
                    CompileError::lex(
                        module,
                        line,
                        &format!("bad integer literal `{}`", &src[start..i]),
                    )
                })?;
                push!(Tok::Int(v));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match Tok::keyword(word) {
                    Some(kw) => push!(kw),
                    None => push!(Tok::Ident(word.to_string())),
                }
            }
            _ => {
                let two = |a: u8, b: u8| c == a && bytes.get(i + 1) == Some(&b);
                let (tok, len) = if two(b'-', b'>') {
                    (Tok::Arrow, 2)
                } else if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::NotEq, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b';' => Tok::Semi,
                        b',' => Tok::Comma,
                        b'.' => Tok::Dot,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        b'!' => Tok::Bang,
                        b'=' => Tok::Assign,
                        other => {
                            return Err(CompileError::lex(
                                module,
                                line,
                                &format!("unexpected character `{}`", other as char),
                            ))
                        }
                    };
                    (t, 1)
                };
                push!(tok);
                i += len;
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src, "t").unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("long x = 42;"),
            vec![
                Tok::KwLong,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("p->f - 1"),
            vec![
                Tok::Ident("p".into()),
                Tok::Arrow,
                Tok::Ident("f".into()),
                Tok::Minus,
                Tok::Int(1),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // c1\n/* c2\nc3 */ b", "t").unwrap();
        assert_eq!(toks[0].kind, Tok::Ident("a".into()));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, Tok::Ident("b".into()));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn hex_literals() {
        assert_eq!(
            kinds("0x40 0XFF"),
            vec![Tok::Int(64), Tok::Int(255), Tok::Eof]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= == != && || << >>"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::NotEq,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Shl,
                Tok::Shr,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn bad_char_reports_line() {
        let err = lex("a\n@", "m").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("m:2"), "{msg}");
    }

    #[test]
    fn unterminated_comment() {
        assert!(lex("/* nope", "t").is_err());
    }
}
