//! The `mp-serve` daemon: accept collector sessions and queries on a
//! TCP listener, land raw segments, and run background compaction.
//!
//! Threading model: one accept loop, one handler thread per
//! connection (capped by `--max-conns`), one optional background
//! thread for periodic compaction and retention sweeps. Ingest
//! streaming is lock-free (each session appends to its own staging
//! file), and sealing a finished session into tier 0 is a single
//! atomic rename that needs no lock either (see
//! [`crate::registry`] for why). The operations that *read or rewrite*
//! a window's tiers — compaction, retention, queries, watch frames —
//! coordinate through the per-window [`WindowRegistry`]: compaction
//! takes one window's exclusive lock, readers take shared locks on
//! exactly the windows they touch, and windows never wait on each
//! other. Sealing into window A, compacting window B, and querying
//! window C all proceed concurrently.
//!
//! Session lifecycle:
//!
//! ```text
//! HELLO ──► ingest/WINDOW@ID.part created, HELLO_OK(ID) sent
//! CHUNK*──► frame payloads appended verbatim (MPES v2 bytes)
//! END  ───► fsync, seal to raw/WINDOW/ID.mpes, END_OK sent
//! ```
//!
//! Session ids are `SEQ-NAME` with a zero-padded arrival sequence
//! number. The counter is seeded at startup from the highest sequence
//! recorded anywhere on disk (staging files, raw segments, compaction
//! manifests), so a restarted daemon never hands out an id that an
//! earlier boot already used — sealing refuses to overwrite an
//! existing raw segment as a second line of defense. Startup also
//! sweeps `ingest/` for staging files a crashed boot left behind,
//! sealing any readable prefix into its window (the label is embedded
//! in the staging file name) and discarding the rest.
//!
//! A disconnect before END — even mid-frame — still seals whatever
//! prefix arrived, as long as it parses as an MPES stream: the chunk
//! format is self-delimiting and checksummed, so a damaged tail is
//! detected and dropped by [`StreamFile`] exactly as for a local
//! crash. A prefix too short to parse (lost before the preamble
//! landed) is discarded. A connection that simply goes *silent* is
//! treated the same way: after `--idle-secs` without a frame the
//! daemon seals the readable prefix and drops the connection, so a
//! wedged collector cannot pin its staging file (or a handler thread)
//! forever.
//!
//! [`StreamFile`]: memprof_store::StreamFile

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use memprof_store::{validate_stream_prefix, StoreError};

use crate::compact::{compact_all_registered, CompactCache};
use crate::query::{answer, watch_frame, QueryOutcome};
use crate::registry::{WindowRegistry, WindowState};
use crate::retention::{enforce_retention, RetentionPolicy};
use crate::store::{valid_label, StoreDirs};
use crate::wire::{
    is_timeout, parse_hello, read_frame, write_frame, WireError, TAG_CHUNK, TAG_END, TAG_END_OK,
    TAG_ERROR, TAG_HELLO, TAG_HELLO_OK, TAG_PUSH, TAG_QUERY, TAG_RESULT, TAG_WATCH,
};

/// Default seconds a connection may sit silent before the daemon
/// seals its readable prefix and drops it.
pub const DEFAULT_IDLE_SECS: u64 = 300;

/// Default cap on concurrent connections; past it the daemon sheds
/// new connections with an ERROR frame instead of spawning threads
/// without bound.
pub const DEFAULT_MAX_CONNS: usize = 256;

/// Cadence of the background retention sweep (independent of
/// `--compact-secs`: retention has to notice idle windows even when
/// periodic compaction is off).
pub const RETENTION_PERIOD: Duration = Duration::from_secs(1);

/// How often a watch handler probes its socket for disconnects while
/// parked waiting for the window's generation to advance.
const WATCH_PROBE: Duration = Duration::from_millis(25);

/// How long one `wait_past` park lasts before the watch handler
/// re-checks the stop flag and the socket.
const WATCH_PARK: Duration = Duration::from_millis(100);

/// Daemon configuration.
#[derive(Default)]
pub struct ServerConfig {
    /// Seconds between background compaction passes; `None` compacts
    /// only on explicit `compact` queries.
    pub compact_secs: Option<u64>,
    /// Max windows whose merged experiments stay cached between
    /// compaction passes; `None` uses
    /// [`CompactCache::DEFAULT_CACHED_WINDOWS`], `Some(0)` disables
    /// the cache (every pass re-reads the packed store).
    pub cache_windows: Option<usize>,
    /// Seconds a connection may sit idle between frames before its
    /// readable prefix is sealed exactly as a disconnect would seal
    /// it; `None` uses [`DEFAULT_IDLE_SECS`], `Some(0)` disables the
    /// timeout.
    pub idle_secs: Option<u64>,
    /// Cap on concurrent connections; `None` uses
    /// [`DEFAULT_MAX_CONNS`], `Some(0)` removes the cap.
    pub max_conns: Option<usize>,
    /// Raw-tier retention; inactive by default.
    pub retention: RetentionPolicy,
}

struct Shared {
    dirs: StoreDirs,
    /// Per-window tier locks and generation counters; see
    /// [`crate::registry`].
    registry: WindowRegistry,
    /// Per-window merge results that make repeat compaction
    /// incremental. Held only to take or put one window's entry,
    /// never across a merge.
    cache: Mutex<CompactCache>,
    /// Arrival sequence for session ids; zero-padded into the file
    /// name so sorted-order merges are deterministic.
    seq: AtomicU64,
    stop: AtomicBool,
    /// Live connection count, for `--max-conns` shedding.
    conns: AtomicUsize,
    /// Read/write timeout applied to accepted streams; `None`
    /// disables idling out.
    idle: Option<Duration>,
    max_conns: usize,
    retention: RetentionPolicy,
}

/// Decrements the live connection count when a handler thread
/// finishes, however it exits.
struct ConnSlot {
    shared: Arc<Shared>,
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.shared.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon; dropping the handle does not stop it — call
/// [`Server::shutdown`] (or send a `shutdown` query).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    background_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `listen` (e.g. `127.0.0.1:0`) over `data` and start
    /// serving. Returns once the listener is accepting.
    pub fn start(listen: &str, data: &Path, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let dirs = StoreDirs::create(data)?;
        // Seal (or discard) staging files a crashed boot left behind,
        // then seed the session counter above every sequence number
        // on disk so restarts never reuse an id.
        recover_ingest(&dirs);
        let next_seq = dirs.max_existing_seq().saturating_add(1);
        let idle = match config.idle_secs.unwrap_or(DEFAULT_IDLE_SECS) {
            0 => None,
            secs => Some(Duration::from_secs(secs)),
        };
        let shared = Arc::new(Shared {
            dirs,
            registry: WindowRegistry::new(),
            cache: Mutex::new(CompactCache::with_cap(
                config
                    .cache_windows
                    .unwrap_or(CompactCache::DEFAULT_CACHED_WINDOWS),
            )),
            seq: AtomicU64::new(next_seq),
            stop: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            idle,
            max_conns: config.max_conns.unwrap_or(DEFAULT_MAX_CONNS),
            retention: config.retention.clone(),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let active = accept_shared.conns.fetch_add(1, Ordering::SeqCst) + 1;
                if accept_shared.max_conns > 0 && active > accept_shared.max_conns {
                    accept_shared.conns.fetch_sub(1, Ordering::SeqCst);
                    shed_connection(stream, accept_shared.max_conns);
                    continue;
                }
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    let slot = ConnSlot {
                        shared: Arc::clone(&conn_shared),
                    };
                    if let Err(e) = handle_connection(&conn_shared, stream) {
                        eprintln!("mp-serve: connection error: {e}");
                    }
                    drop(slot);
                });
            }
        });

        let background_thread = (config.compact_secs.is_some() || shared.retention.is_active())
            .then(|| {
                let shared = Arc::clone(&shared);
                let compact_period = config.compact_secs.map(|s| Duration::from_secs(s.max(1)));
                std::thread::spawn(move || {
                    let mut last_compact = Instant::now();
                    let mut last_retention = Instant::now();
                    while !shared.stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(100));
                        if compact_period.is_some_and(|p| last_compact.elapsed() >= p) {
                            last_compact = Instant::now();
                            match compact_all_registered(
                                &shared.dirs,
                                &shared.registry,
                                &shared.cache,
                            ) {
                                Ok(report) if !report.windows.is_empty() => {
                                    eprint!("mp-serve: {}", report.render());
                                }
                                Ok(_) => {}
                                Err(e) => eprintln!("mp-serve: compaction failed: {e}"),
                            }
                        }
                        if shared.retention.is_active()
                            && last_retention.elapsed() >= RETENTION_PERIOD
                        {
                            last_retention = Instant::now();
                            match enforce_retention(
                                &shared.dirs,
                                &shared.registry,
                                &shared.cache,
                                &shared.retention,
                            ) {
                                Ok(report) if report != Default::default() => {
                                    eprint!("mp-serve: {}", report.render());
                                }
                                Ok(_) => {}
                                Err(e) => eprintln!("mp-serve: retention sweep failed: {e}"),
                            }
                        }
                    }
                })
            });

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            background_thread,
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry state for `window` — exposed so embedders and
    /// tests can hold a window's tier lock or observe its generation
    /// from outside the daemon (e.g. to pin that a query against one
    /// window completes while another window's exclusive lock is
    /// held, as during compaction).
    pub fn window_state(&self, window: &str) -> Arc<WindowState> {
        self.shared.registry.state(window)
    }

    /// Stop the daemon and wait for its threads.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.background_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the daemon is asked to stop (via a `shutdown`
    /// query), then join its threads.
    pub fn run(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.background_thread.take() {
            let _ = t.join();
        }
    }
}

/// Refuse a connection past the `--max-conns` cap: a proper ERROR
/// frame (under a short write timeout so a slow peer cannot stall the
/// accept loop), then drop.
fn shed_connection(mut stream: TcpStream, cap: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let msg = format!("server at connection limit ({cap}); retry later");
    let _ = write_frame(&mut stream, TAG_ERROR, msg.as_bytes());
}

/// Dispatch a fresh connection on its first frame: HELLO starts a
/// collector session, QUERY answers one query, WATCH streams summary
/// frames.
fn handle_connection(shared: &Shared, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(shared.idle)?;
    stream.set_write_timeout(shared.idle)?;
    let first = match read_frame(&mut stream) {
        Ok(f) => f,
        // Port probes and shutdown wake-ups close without a frame; a
        // connection that never sends one times out just as silently.
        Err(WireError::Closed)
        | Err(WireError::TruncatedFrame { .. })
        | Err(WireError::TimedOut) => return Ok(()),
        Err(WireError::Io(e)) => return Err(e),
        Err(e) => {
            let _ = write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes());
            return Ok(());
        }
    };
    match first.tag {
        TAG_HELLO => handle_session(shared, stream, &first.payload),
        TAG_QUERY => handle_query(shared, stream, &first.payload),
        TAG_WATCH => handle_watch(shared, stream, &first.payload),
        tag => {
            let msg = format!("expected HELLO, QUERY, or WATCH, got tag {tag}");
            let _ = write_frame(&mut stream, TAG_ERROR, msg.as_bytes());
            Ok(())
        }
    }
}

/// Sanitize a collector-supplied session name for use in a file name.
fn clean_name(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .take(40)
        .collect();
    if cleaned.is_empty() {
        "session".to_string()
    } else {
        cleaned
    }
}

fn handle_session(shared: &Shared, mut stream: TcpStream, hello: &[u8]) -> std::io::Result<()> {
    let (name, window) = match parse_hello(hello) {
        Ok(parts) => parts,
        Err(e) => {
            let _ = write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes());
            return Ok(());
        }
    };
    if !valid_label(&window) {
        let msg = format!("bad window label `{window}`");
        let _ = write_frame(&mut stream, TAG_ERROR, msg.as_bytes());
        return Ok(());
    }
    let seq = shared.seq.fetch_add(1, Ordering::SeqCst);
    // Zero-padded wide enough that lexicographic file-name order (the
    // canonical merge order) matches arrival order for any realistic
    // session count.
    let session = format!("{seq:010}-{}", clean_name(&name));
    let part = shared.dirs.ingest_path(&window, &session);
    let mut file = std::fs::File::create(&part)?;
    write_frame(&mut stream, TAG_HELLO_OK, session.as_bytes())?;

    // Ingest until END, disconnect, or idle timeout. Every CHUNK
    // payload is MPES v2 bytes, appended verbatim.
    let mut clean_end = false;
    loop {
        match read_frame(&mut stream) {
            Ok(f) if f.tag == TAG_CHUNK => file.write_all(&f.payload)?,
            Ok(f) if f.tag == TAG_END => {
                clean_end = true;
                break;
            }
            Ok(f) => {
                let msg = format!("unexpected tag {} in session", f.tag);
                let _ = write_frame(&mut stream, TAG_ERROR, msg.as_bytes());
                break;
            }
            Err(WireError::Closed) => break,
            // A collector silent past the idle timeout is sealed
            // exactly like a disconnect: the readable prefix lands, a
            // mid-frame stall additionally keeps its partial chunk
            // bytes (the MPES checksums drop the damaged tail).
            Err(WireError::TimedOut) => {
                eprintln!("mp-serve: session {session}: idle timeout, sealing prefix");
                break;
            }
            Err(WireError::TruncatedFrame { tag, partial }) => {
                if tag == TAG_CHUNK {
                    file.write_all(&partial)?;
                }
                break;
            }
            Err(WireError::Protocol(why)) => {
                let _ = write_frame(&mut stream, TAG_ERROR, why.as_bytes());
                break;
            }
            Err(WireError::Io(e)) => {
                eprintln!("mp-serve: session {session}: {e}");
                break;
            }
        }
    }
    file.sync_all()?;
    drop(file);

    match seal_session(shared, &part, &window, &session) {
        Ok(true) => {
            eprintln!("mp-serve: sealed {session} into window {window}");
            if clean_end {
                write_frame(&mut stream, TAG_END_OK, b"")?;
            }
        }
        Ok(false) => {
            eprintln!("mp-serve: discarded {session}: no parseable prefix");
        }
        Err(e) => {
            eprintln!("mp-serve: cannot seal {session}: {e}");
            if clean_end {
                let _ = write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes());
            }
        }
    }
    Ok(())
}

/// Move a finished staging file into its window's tier-0 directory.
/// Returns `Ok(false)` (and deletes the staging file) if the landed
/// bytes are too short to parse as an MPES stream — nothing usable
/// arrived. The verdict comes from [`validate_stream_prefix`], which
/// reads only the stream preamble and header chunk through positioned
/// reads — a full parse can only fail on those, so sealing a large
/// session no longer buffers its whole image just to decide yes/no.
/// Needs no tier lock: the rename is atomic, so a concurrent reader
/// sees the complete segment or no segment, and a concurrent
/// compaction pass captured its fresh list before the rename (the
/// manifest it publishes won't name the new segment, which therefore
/// stays fresh for the next pass — never double-counted, never lost).
fn seal_part(
    dirs: &StoreDirs,
    part: &Path,
    window: &str,
    session: &str,
) -> Result<bool, StoreError> {
    if !validate_stream_prefix(part).map_err(|e| e.at(part))? {
        let _ = std::fs::remove_file(part);
        return Ok(false);
    }
    let raw_dir = dirs.raw_dir(window);
    std::fs::create_dir_all(&raw_dir).map_err(|e| StoreError::Io(e).at(&raw_dir))?;
    let dest = dirs.raw_path(window, session);
    // The seeded session counter makes collisions impossible in
    // normal operation; refuse rather than silently replace sealed
    // data if one happens anyway (e.g. a hand-copied segment).
    if dest.exists() {
        return Err(StoreError::Incompatible(format!(
            "raw segment {} already exists; refusing to overwrite it",
            dest.display()
        )));
    }
    std::fs::rename(part, &dest).map_err(|e| StoreError::Io(e).at(&dest))?;
    Ok(true)
}

fn seal_session(
    shared: &Shared,
    part: &Path,
    window: &str,
    session: &str,
) -> Result<bool, StoreError> {
    let sealed = seal_part(&shared.dirs, part, window, session)?;
    if sealed {
        // Wake watchers: the window has new data.
        shared.registry.state(window).bump_generation();
    }
    Ok(sealed)
}

/// Startup sweep of `ingest/`: a staging file left by a crashed boot
/// is sealed into its window exactly as a mid-session disconnect
/// would have sealed it (readable prefix kept, unusable remainder
/// discarded); files whose names don't parse are removed.
fn recover_ingest(dirs: &StoreDirs) {
    let Ok(entries) = std::fs::read_dir(dirs.ingest_dir()) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "part") {
            continue;
        }
        let parsed = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|stem| stem.split_once('@'))
            .filter(|(window, _)| valid_label(window));
        let Some((window, session)) = parsed else {
            eprintln!(
                "mp-serve: removing unrecognized staging file {}",
                path.display()
            );
            let _ = std::fs::remove_file(&path);
            continue;
        };
        match seal_part(dirs, &path, window, session) {
            Ok(true) => eprintln!("mp-serve: recovered {session} into window {window}"),
            Ok(false) => eprintln!("mp-serve: discarded {session}: no parseable prefix"),
            Err(e) => eprintln!("mp-serve: cannot recover {}: {e}", path.display()),
        }
    }
}

fn handle_query(shared: &Shared, mut stream: TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let line = String::from_utf8_lossy(payload);
    // `answer` takes the shared lock of exactly the windows the query
    // reads — no global lock, so a query against one window completes
    // while another window is mid-compaction.
    let outcome = answer(&shared.dirs, &shared.registry, line.trim());
    match outcome {
        Ok(QueryOutcome::Text(text)) => write_frame(&mut stream, TAG_RESULT, text.as_bytes()),
        Ok(QueryOutcome::Compact) => {
            match compact_all_registered(&shared.dirs, &shared.registry, &shared.cache) {
                Ok(r) => write_frame(&mut stream, TAG_RESULT, r.render().as_bytes()),
                Err(e) => write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes()),
            }
        }
        Ok(QueryOutcome::Shutdown) => {
            write_frame(&mut stream, TAG_RESULT, b"shutting down\n")?;
            shared.stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so it notices the flag.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            Ok(())
        }
        Err(e) => write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes()),
    }
}

/// Serve one watch subscription: push a summary frame now, then
/// another every time the window's tier generation advances (seal,
/// compaction fold, retention aging). Several bumps between frames
/// collapse into one push — each frame reflects the tiers at build
/// time, so a dashboard is at most one frame behind, never replaying
/// history. The shared tier lock is held only while a frame is built,
/// so a parked watcher costs its window nothing.
fn handle_watch(shared: &Shared, mut stream: TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let window = String::from_utf8_lossy(payload).trim().to_string();
    if !valid_label(&window) {
        let msg = format!("bad window label `{window}`");
        let _ = write_frame(&mut stream, TAG_ERROR, msg.as_bytes());
        return Ok(());
    }
    // The client never sends after WATCH, so reads only probe
    // liveness; a short timeout keeps the probes non-blocking.
    stream.set_read_timeout(Some(WATCH_PROBE))?;
    let state = shared.registry.state(&window);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (generation, text) = {
            let _guard = state.lock_shared();
            let generation = state.generation();
            (generation, watch_frame(&shared.dirs, &window, generation))
        };
        if write_frame(&mut stream, TAG_PUSH, text.as_bytes()).is_err() {
            return Ok(()); // client gone
        }
        // Park until the generation moves past what we just pushed,
        // waking periodically to notice shutdown or a departed
        // client.
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let mut probe = [0u8; 1];
            match stream.read(&mut probe) {
                Ok(0) => return Ok(()), // disconnect
                Ok(_) => {}             // watch clients shouldn't send; ignore
                Err(e) if is_timeout(&e) => {}
                Err(_) => return Ok(()),
            }
            if state.wait_past(generation, WATCH_PARK) > generation {
                break;
            }
        }
    }
}

/// Client side of a query: connect, send one QUERY line, return the
/// RESULT text (or the daemon's error).
pub fn query(addr: &str, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, TAG_QUERY, line.as_bytes())?;
    let reply = read_frame(&mut stream).map_err(|e| match e {
        WireError::Io(e) => e,
        other => std::io::Error::other(other.to_string()),
    })?;
    match reply.tag {
        TAG_RESULT => Ok(String::from_utf8_lossy(&reply.payload).to_string()),
        TAG_ERROR => Err(std::io::Error::other(
            String::from_utf8_lossy(&reply.payload).to_string(),
        )),
        tag => Err(std::io::Error::other(format!(
            "unexpected query reply (tag {tag})"
        ))),
    }
}

/// Client side of a watch subscription; pull frames with
/// [`WatchClient::next_frame`].
pub struct WatchClient {
    stream: TcpStream,
}

impl WatchClient {
    /// Block for the next PUSH frame. `Ok(None)` means the daemon
    /// closed the stream (shutdown).
    pub fn next_frame(&mut self) -> std::io::Result<Option<String>> {
        match read_frame(&mut self.stream) {
            Ok(f) if f.tag == TAG_PUSH => Ok(Some(String::from_utf8_lossy(&f.payload).to_string())),
            Ok(f) if f.tag == TAG_ERROR => Err(std::io::Error::other(
                String::from_utf8_lossy(&f.payload).to_string(),
            )),
            Ok(f) => Err(std::io::Error::other(format!(
                "unexpected watch frame (tag {})",
                f.tag
            ))),
            Err(WireError::Closed) | Err(WireError::TruncatedFrame { .. }) => Ok(None),
            Err(WireError::Io(e)) => Err(e),
            Err(other) => Err(std::io::Error::other(other.to_string())),
        }
    }
}

/// Subscribe to live summary frames for `window`. The first frame
/// arrives immediately (even for an empty window); subsequent frames
/// follow the window's tier generation.
pub fn watch(addr: &str, window: &str) -> std::io::Result<WatchClient> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, TAG_WATCH, window.as_bytes())?;
    Ok(WatchClient { stream })
}
