//! Property test: for random small instances, the simulated network
//! simplex and the pure-Rust SSP oracle agree on the optimum.

use proptest::prelude::*;

use mcf::{run_mcf, verify_against_oracle, Instance, InstanceParams, Layout, McfParams};
use minic::CompileOptions;
use simsparc_machine::MachineConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simplex_matches_oracle_on_random_instances(
        n_trips in 12usize..40,
        window in 8usize..25,
        seed in 0u64..10_000,
    ) {
        let inst = Instance::generate(InstanceParams {
            n_trips,
            window,
            seed,
            ..Default::default()
        });
        let (result, _) = run_mcf(
            &inst,
            Layout::Baseline,
            &McfParams::default(),
            CompileOptions::default(),
            MachineConfig::default(),
        )
        .map_err(|e| TestCaseError::fail(format!("run failed (n={n_trips}, seed={seed}): {e}")))?;
        verify_against_oracle(&inst, &result)
            .map_err(|e| TestCaseError::fail(format!("mismatch (n={n_trips}, w={window}, seed={seed}): {e}")))?;
    }
}
