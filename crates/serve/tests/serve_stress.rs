//! Concurrent stress test: several collectors streaming into distinct
//! windows while a compaction loop folds tiers and query clients
//! hammer the daemon — ending with the strongest check the design
//! makes available: every window's final packed store is
//! byte-identical to the offline toolchain replaying the *same
//! compaction rounds* over the same sessions.
//!
//! The replay is round-by-round because merging is not associative at
//! the byte level (each `mp-store merge` stamps its inputs into the
//! experiment log), so "one flat offline merge" is the wrong oracle —
//! the right one is the sequence of merges the daemon actually ran,
//! which the test reconstructs from the compaction manifest it
//! captures after each pass (the test's compact loop being the only
//! compaction driver).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use memprof_serve::{self as serve, Server, ServerConfig, SocketSink, StoreDirs};
use memprof_store::{
    aggregate_refs, collect_attachments, merge_experiments, pack_experiment, ExperimentRef,
};

mod common;
use common::{drive, local_bytes, scratch, wait_for, SYMS};

const WINDOWS: [&str; 3] = ["sw0", "sw1", "sw2"];
const SESSIONS_PER_WINDOW: u64 = 4;
const SEGS: usize = 2;

/// Seeds are globally unique so a consumed segment's bytes are
/// recoverable from its session name alone (`s{seed}`).
fn seed_of(window_idx: u64, session_idx: u64) -> u64 {
    window_idx * 100 + session_idx + 1
}

fn seed_from_name(file_name: &str) -> u64 {
    file_name
        .strip_suffix(".mpes")
        .and_then(|stem| stem.split_once('-'))
        .and_then(|(_, name)| name.strip_prefix('s'))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable consumed segment `{file_name}`"))
}

#[test]
fn concurrent_ingest_compaction_and_queries_replay_offline() {
    let data = scratch("stress");
    let server = Server::start("127.0.0.1:0", &data, ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let dirs = StoreDirs::create(&data).unwrap();

    let done = Arc::new(AtomicBool::new(false));

    // Collectors: one thread per window, each streaming several
    // sessions back to back.
    let collectors: Vec<_> = (0..WINDOWS.len() as u64)
        .map(|wi| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for si in 0..SESSIONS_PER_WINDOW {
                    let seed = seed_of(wi, si);
                    let mut sink =
                        SocketSink::connect(&addr, &format!("s{seed}"), WINDOWS[wi as usize])
                            .unwrap();
                    sink.attach("syms.txt", SYMS);
                    drive(&mut sink, seed, SEGS);
                }
            })
        })
        .collect();

    // Query clients hammer the daemon throughout; errors are fine
    // early on (a window may not exist yet), panics and hangs are not.
    let query_clients: Vec<_> = (0..2)
        .map(|qi| {
            let addr = addr.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut answered = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let line = match qi {
                        0 => format!("stat {}", WINDOWS[(answered % 3) as usize]),
                        _ => "windows".to_string(),
                    };
                    if serve::query(&addr, &line).is_ok() {
                        answered += 1;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                answered
            })
        })
        .collect();

    // A watch client follows the first window; every pushed frame's
    // event total must be ≥ the one before it.
    let watch_total = Arc::new(AtomicU64::new(0));
    let watch_thread = {
        let addr = addr.clone();
        let watch_total = Arc::clone(&watch_total);
        std::thread::spawn(move || {
            let mut client = serve::watch(&addr, WINDOWS[0]).unwrap();
            let mut last = 0u64;
            let mut frames = 0u64;
            while let Ok(Some(frame)) = client.next_frame() {
                let total: u64 = frame
                    .lines()
                    .next()
                    .and_then(|h| h.rsplit(' ').next())
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| panic!("bad watch header in: {frame}"));
                assert!(
                    total >= last,
                    "watch total went backwards: {last} -> {total}"
                );
                last = total;
                frames += 1;
                watch_total.store(total, Ordering::SeqCst);
            }
            frames
        })
    };

    // Compaction loop — the only compaction driver, so the manifest on
    // disk after each `compact` query is exactly that pass's consumed
    // batch. Record each window's batches in order for the replay.
    let mut batches: Vec<Vec<Vec<String>>> = vec![Vec::new(); WINDOWS.len()];
    let mut last_manifest: Vec<Option<String>> = vec![None; WINDOWS.len()];
    let mut record_pass = |batches: &mut Vec<Vec<Vec<String>>>| {
        serve::query(&addr, "compact").unwrap();
        for (wi, window) in WINDOWS.iter().enumerate() {
            let Ok(text) = std::fs::read_to_string(dirs.manifest_path(window)) else {
                continue;
            };
            if last_manifest[wi].as_deref() == Some(text.as_str()) {
                continue; // this pass folded nothing for the window
            }
            let manifest = serve::parse_manifest(&text).expect("daemon wrote a bad manifest");
            let mut consumed = manifest.consumed;
            consumed.sort();
            batches[wi].push(consumed);
            last_manifest[wi] = Some(text);
        }
    };

    while !collectors.iter().all(|c| c.is_finished()) {
        record_pass(&mut batches);
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    for c in collectors {
        c.join().unwrap();
    }
    // Final pass folds whatever sealed after the last loop iteration.
    record_pass(&mut batches);

    done.store(true, Ordering::SeqCst);
    for q in query_clients {
        assert!(q.join().unwrap() > 0, "query client never got an answer");
    }

    // Replay each window's compaction rounds offline: regenerate every
    // consumed session's bytes from its seed, merge
    // `[previous pack] + batch` with the offline toolchain, and demand
    // byte-identity with what the daemon published.
    let replay = scratch("stress_replay");
    for (wi, window) in WINDOWS.iter().enumerate() {
        let consumed_total: usize = batches[wi].iter().map(Vec::len).sum();
        assert_eq!(
            consumed_total, SESSIONS_PER_WINDOW as usize,
            "{window}: compaction consumed {consumed_total} sessions"
        );
        assert!(
            dirs.live_raw_segments(window).unwrap().fresh.is_empty(),
            "{window}: raw segments left after the final pass"
        );

        let packed_path = replay.join(format!("{window}.mps"));
        for (round, batch) in batches[wi].iter().enumerate() {
            let mut inputs = Vec::new();
            if round > 0 {
                inputs.push(packed_path.clone());
            }
            for name in batch {
                let p = replay.join(name);
                std::fs::write(&p, local_bytes(seed_from_name(name), SEGS)).unwrap();
                inputs.push(p);
            }
            let refs: Vec<ExperimentRef> = inputs
                .iter()
                .map(|p| ExperimentRef::open(p).unwrap())
                .collect();
            let bytes = pack_experiment(
                &merge_experiments(&refs).unwrap(),
                &collect_attachments(&refs),
            );
            drop(refs);
            std::fs::write(&packed_path, bytes).unwrap();
        }
        assert_eq!(
            std::fs::read(&packed_path).unwrap(),
            std::fs::read(dirs.packed_path(window)).unwrap(),
            "{window}: daemon pack differs from the offline replay of its rounds"
        );
    }

    // The watch client must converge on the true event total of its
    // window before shutdown (its last frame follows the final fold).
    let expected: u64 = {
        let agg = aggregate_refs(
            &[ExperimentRef::open(&replay.join(format!("{}.mps", WINDOWS[0]))).unwrap()],
            0,
        )
        .unwrap();
        agg.totals.iter().sum()
    };
    assert!(expected > 0);
    wait_for("watch to observe the final event total", || {
        (watch_total.load(Ordering::SeqCst) == expected).then_some(())
    });

    server.shutdown();
    let frames = watch_thread.join().unwrap();
    assert!(frames >= 2, "watch saw only {frames} frames");
}
