//! Explore the simulated hardware counters: the available events and
//! their register constraints (`collect` run with no arguments prints
//! this list on the real tool, §2.2.1), the named overflow intervals,
//! and a live demonstration of counter skid and why the backtracking
//! search exists.
//!
//! Run with: `cargo run --release --example counter_explorer`

use memprof::machine::{CounterEvent, Machine, MachineConfig, SkidModel};
use memprof::minic::{compile_and_link, CompileOptions};
use memprof::profiler::{collect, parse_counter_spec, CollectConfig, Interval};

fn main() {
    println!("== available counters (cf. `collect` with no arguments) ==");
    println!(
        "{:<9} {:<24} {:>5} {:>7} {:>10} {:>12}",
        "name", "description", "regs", "cycles?", "memory?", "interval(on)"
    );
    for e in CounterEvent::ALL {
        println!(
            "{:<9} {:<24} {:>5} {:>7} {:>10} {:>12}",
            e.name(),
            e.title(),
            format!("{:?}", e.allowed_slots()),
            if e.counts_cycles() { "yes" } else { "no" },
            if e.is_memory_event() { "yes" } else { "no" },
            Interval::On.resolve(e),
        );
    }

    println!("\n== skid model (retired instructions from trigger to trap) ==");
    let skid = SkidModel::default();
    for e in CounterEvent::ALL {
        let (lo, hi) = skid.range(e);
        println!(
            "{:<9} {lo}..={hi}{}",
            e.name(),
            if lo == 1 && hi == 1 {
                "  (precise)"
            } else {
                ""
            }
        );
    }

    // Demonstrate skid: profile a program whose only memory traffic is
    // one load in a sea of ALU work, and look at where the delivered
    // PCs land relative to the true trigger.
    const PROGRAM: &str = r#"
extern char *malloc(long nbytes);
long main() {
    long *data = (long*)malloc(8000000);
    long i;
    long s = 0;
    long x = 1;
    for (i = 0; i < 900000; i = i + 1) {
        s = s + data[(i * 5227) % 1000000];   // the only load
        x = x * 3;
        x = x + 7;
        x = x - (x >> 4);
    }
    print_long(s + x % 2);
    return 0;
}
"#;
    let program =
        compile_and_link(&[("skid.c", PROGRAM)], CompileOptions::profiling()).expect("compile");
    let mut machine = Machine::new(MachineConfig::default());
    machine.load(&program.image);
    let config = CollectConfig {
        counters: parse_counter_spec("+dcrm,733").unwrap(),
        clock_profiling: false,
        clock_period_cycles: 0,
        ..CollectConfig::default()
    };
    let experiment = collect(&mut machine, &config).expect("collect");

    println!(
        "\n== observed skid (D$ read miss counter, {} events) ==",
        experiment.hwc_events.len()
    );
    let mut histogram = std::collections::BTreeMap::new();
    let mut backtrack_correct = 0usize;
    for ev in &experiment.hwc_events {
        *histogram.entry(ev.truth_skid).or_insert(0usize) += 1;
        if ev.candidate_pc == Some(ev.truth_trigger_pc) {
            backtrack_correct += 1;
        }
    }
    for (skid, count) in &histogram {
        println!("skid {skid}: {count:>6} events");
    }
    println!(
        "delivered PC == trigger PC in 0 events (the trap is never precise);\n\
         apropos backtracking recovered the true trigger for {:.1}% of events",
        100.0 * backtrack_correct as f64 / experiment.hwc_events.len() as f64
    );
}
