//! Ablation: collection perturbation vs overflow interval.
//!
//! §2 of the paper: "since collection perturbation can be controlled
//! through configuration of the processors' counter overflow rates,
//! the tools are efficient and convenient". In the simulator the
//! profiled program's *simulated* cycles are unperturbed (the trap
//! handler runs in the host), so the measurable cost of aggressive
//! intervals is (a) host-side collection time and (b) *dropped*
//! overflow events once traps overlap their own skid — the real
//! hardware's failure mode. The printed table shows events recorded
//! and dropped per interval; the benches measure collection cost.

use criterion::{criterion_group, criterion_main, Criterion};

use mcf_bench::{paper_machine_config, Scale};
use memprof_core::{collect, parse_counter_spec, CollectConfig};
use minic::CompileOptions;
use simsparc_machine::Machine;

fn bench_perturbation(c: &mut Criterion) {
    let instance = Scale::test().instance();
    let binary = mcf::compile_mcf(
        &instance,
        mcf::Layout::Baseline,
        &mcf::McfParams::default(),
        CompileOptions::profiling(),
    )
    .unwrap();

    let run_with_interval = |interval: u64| {
        let mut machine = Machine::new(paper_machine_config());
        machine.load(&binary.program.image);
        mcf::stage_instance(&mut machine, &binary.program, &instance);
        let config = CollectConfig {
            counters: parse_counter_spec(&format!("+ecref,{interval}")).unwrap(),
            clock_profiling: false,
            clock_period_cycles: 0,
            max_insns: mcf::MAX_INSNS,
        };
        collect(&mut machine, &config).unwrap()
    };

    println!("\n== ablation: ecref overflow interval vs events recorded/dropped ==");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "interval", "recorded", "dropped", "est.total"
    );
    for interval in [2u64, 5, 17, 101, 997, 9973] {
        let exp = run_with_interval(interval);
        println!(
            "{:>10} {:>10} {:>10} {:>10}",
            interval,
            exp.hwc_events.len(),
            exp.run.dropped[0],
            exp.estimated_total(0)
        );
    }

    let mut group = c.benchmark_group("profiling_perturbation");
    group.sample_size(10);
    for interval in [17u64, 101, 997] {
        group.bench_function(format!("collect_ecref_interval_{interval}"), |b| {
            b.iter(|| run_with_interval(interval))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_perturbation);
criterion_main!(benches);
