//! E1–E7: the compile → collect → analyze pipeline behind Figures
//! 1–7, benchmarked end-to-end and per phase.
//!
//! The `figures` binary regenerates the tables themselves; these
//! benches measure the cost of regenerating them (collection
//! dominates: it simulates the whole program run), and keep each
//! phase honest against performance regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcf_bench::{paper_machine_config, Scale};
use memprof_core::analyze::Analysis;
use memprof_core::{collect, parse_counter_spec, CollectConfig};
use minic::CompileOptions;
use simsparc_machine::{CounterEvent, Machine};

fn bench_pipeline(c: &mut Criterion) {
    let scale = Scale::test();
    let instance = scale.instance();

    // Compile once; collection/analysis benches reuse the binary.
    let binary = mcf::compile_mcf(
        &instance,
        mcf::Layout::Baseline,
        &mcf::McfParams::default(),
        CompileOptions::profiling(),
    )
    .unwrap();

    let mut group = c.benchmark_group("figure_pipeline");
    group.sample_size(10);

    group.bench_function("compile_mcf_profiling", |b| {
        b.iter(|| {
            mcf::compile_mcf(
                &instance,
                mcf::Layout::Baseline,
                &mcf::McfParams::default(),
                CompileOptions::profiling(),
            )
            .unwrap()
        })
    });

    let run_exp = |spec: &str, clock: bool| {
        let mut machine = Machine::new(paper_machine_config());
        machine.load(&binary.program.image);
        mcf::stage_instance(&mut machine, &binary.program, &instance);
        let config = CollectConfig {
            counters: parse_counter_spec(spec).unwrap(),
            clock_profiling: clock,
            clock_period_cycles: 10007,
            max_insns: mcf::MAX_INSNS,
        };
        collect(&mut machine, &config).unwrap()
    };

    group.bench_function("collect_exp1_ecstall_ecrm", |b| {
        b.iter(|| black_box(run_exp("+ecstall,49999,+ecrm,251", true)))
    });
    group.bench_function("collect_exp2_ecref_dtlbm", |b| {
        b.iter(|| black_box(run_exp("+ecref,997,+dtlbm,53", false)))
    });

    // Analysis phase on pre-collected experiments.
    let exp1 = run_exp("+ecstall,49999,+ecrm,251", true);
    let exp2 = run_exp("+ecref,997,+dtlbm,53", false);

    group.bench_function("analyze_reduce", |b| {
        b.iter(|| Analysis::new(black_box(&[&exp1, &exp2]), &binary.program.syms).totals())
    });

    let analysis = Analysis::new(&[&exp1, &exp2], &binary.program.syms);
    group.bench_function("fig2_function_list", |b| {
        b.iter(|| black_box(analysis.function_list(0)))
    });
    group.bench_function("fig3_annotated_source", |b| {
        b.iter(|| black_box(analysis.render_annotated_source("refresh_potential")))
    });
    group.bench_function("fig4_annotated_disasm", |b| {
        b.iter(|| {
            black_box(
                analysis.render_annotated_disasm("refresh_potential", &binary.program.image.text),
            )
        })
    });
    group.bench_function("fig5_pc_list", |b| {
        let col = analysis.col_by_event(CounterEvent::ECReadMiss).unwrap();
        b.iter(|| black_box(analysis.pc_list(col, 20)))
    });
    group.bench_function("fig6_data_objects", |b| {
        let col = analysis.col_by_event(CounterEvent::ECStallCycles).unwrap();
        b.iter(|| black_box(analysis.data_objects(col)))
    });
    group.bench_function("fig7_struct_expansion", |b| {
        b.iter(|| black_box(analysis.expand_struct("node")))
    });
    group.bench_function("addrviews_instances", |b| {
        b.iter(|| black_box(analysis.instances("node", 512, 50)))
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
