//! Compile, stage, run and verify MCF on the simulated machine.

use minic::{compile_and_link, CompileOptions, Program};
use simsparc_machine::{CacheConfig, Machine, MachineConfig, NullHook, RunOutcome, TlbConfig};

use crate::instance::Instance;
use crate::oracle::{McfProblem, OracleResult};
use crate::program::{mcf_source, Layout, McfParams};

/// A compiled MCF binary plus its provenance.
pub struct McfBinary {
    pub program: Program,
    pub layout: Layout,
    pub options: CompileOptions,
}

/// Parsed `write_circulations` output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McfResult {
    /// Objective value (net of artificial arcs).
    pub cost: i64,
    /// Vehicles used.
    pub vehicles: i64,
    /// Dual-feasibility violations (must be 0).
    pub violations: i64,
    /// Simplex pivots performed.
    pub iterations: i64,
    /// `refresh_potential` checksum (DOWN-oriented node visits).
    pub checksum: i64,
    /// Residual artificial flow (must be 0 — feasibility).
    pub artificial_flow: i64,
}

/// Errors from an MCF run.
#[derive(Debug)]
pub enum McfError {
    Compile(minic::CompileError),
    Machine(simsparc_machine::MachineError),
    /// The program exited abnormally or printed garbage.
    BadRun(String),
}

impl std::fmt::Display for McfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McfError::Compile(e) => write!(f, "{e}"),
            McfError::Machine(e) => write!(f, "{e}"),
            McfError::BadRun(s) => write!(f, "bad MCF run: {s}"),
        }
    }
}

impl std::error::Error for McfError {}

impl From<minic::CompileError> for McfError {
    fn from(e: minic::CompileError) -> Self {
        McfError::Compile(e)
    }
}

impl From<simsparc_machine::MachineError> for McfError {
    fn from(e: simsparc_machine::MachineError) -> Self {
        McfError::Machine(e)
    }
}

/// Compile MCF for an instance.
pub fn compile_mcf(
    inst: &Instance,
    layout: Layout,
    params: &McfParams,
    options: CompileOptions,
) -> Result<McfBinary, McfError> {
    let src = mcf_source(inst, layout, params);
    let program = compile_and_link(&[("mcf.c", &src)], options)?;
    Ok(McfBinary {
        program,
        layout,
        options,
    })
}

/// Compile MCF for an instance with a profile-feedback file: prefetch
/// hints, `reorder` stanzas and `heapalign` all take effect in the
/// binary. This is the path `mp-opt` drives — `Layout::Baseline` plus
/// feedback reproduces mechanically what §3.3's authors did by
/// hand-editing the source.
pub fn compile_mcf_with_feedback(
    inst: &Instance,
    layout: Layout,
    params: &McfParams,
    options: CompileOptions,
    feedback: &minic::Feedback,
) -> Result<McfBinary, McfError> {
    let src = mcf_source(inst, layout, params);
    let program = minic::compile_and_link_with_feedback(&[("mcf.c", &src)], options, feedback)?;
    Ok(McfBinary {
        program,
        layout,
        options,
    })
}

/// Stage the instance into the program's global arrays.
pub fn stage_instance(machine: &mut Machine, p: &Program, inst: &Instance) {
    let write_array = |m: &mut Machine, name: &str, values: &dyn Fn(usize) -> i64| {
        let base = p
            .global_addr(name)
            .unwrap_or_else(|| panic!("missing global `{name}`"));
        for i in 0..inst.n() {
            assert!(m.mem_mut().write_u64(base + 8 * i as u64, values(i) as u64));
        }
    };
    let n_addr = p.global_addr("n_trips").expect("n_trips");
    machine.mem_mut().write_u64(n_addr, inst.n() as u64);
    write_array(machine, "trip_start", &|i| inst.trips[i].start_time);
    write_array(machine, "trip_end", &|i| inst.trips[i].end_time);
    write_array(machine, "trip_sloc", &|i| inst.trips[i].start_loc);
    write_array(machine, "trip_eloc", &|i| inst.trips[i].end_loc);
}

/// Parse the six `print_long` lines of `write_circulations`.
pub fn parse_result(outcome: &RunOutcome) -> Result<McfResult, McfError> {
    if outcome.exit_code != 0 {
        return Err(McfError::BadRun(format!(
            "exit code {} (output: {:?})",
            outcome.exit_code, outcome.output
        )));
    }
    let vals: Vec<i64> = outcome
        .output
        .lines()
        .map(|l| l.trim().parse::<i64>())
        .collect::<Result<_, _>>()
        .map_err(|e| McfError::BadRun(format!("unparsable output: {e}")))?;
    if vals.len() != 6 {
        return Err(McfError::BadRun(format!(
            "expected 6 output lines, got {}",
            vals.len()
        )));
    }
    Ok(McfResult {
        cost: vals[0],
        vehicles: vals[1],
        violations: vals[2],
        iterations: vals[3],
        checksum: vals[4],
        artificial_flow: vals[5],
    })
}

/// The machine configuration used for the paper-reproduction
/// experiments. The memory hierarchy is the Sun Fire 280R's, scaled
/// down by roughly the same factor as the workload (MCF's reference
/// input occupies ~190 MB against an 8 MB E$ and a 4 MB-reach DTLB;
/// our scaled instances occupy a few MB, so the E$ scales to 128 KB,
/// the D$ to 16 KB and the DTLB to 16 entries, preserving the
/// working-set/capacity ratios). Latencies, associativities and line
/// sizes are unchanged from the real machine.
pub fn paper_machine_config() -> MachineConfig {
    MachineConfig {
        dcache: CacheConfig {
            bytes: 16 * 1024,
            ways: 4,
            line_bytes: 32,
        },
        ecache: CacheConfig {
            bytes: 128 * 1024,
            ways: 2,
            line_bytes: 512,
        },
        tlb: TlbConfig {
            entries: 16,
            ways: 2,
        },
        ..MachineConfig::default()
    }
}

/// Instruction budget for simulated MCF runs.
pub const MAX_INSNS: u64 = 4_000_000_000;

/// Compile + stage + run (unprofiled) + parse, on the given machine
/// config.
pub fn run_mcf(
    inst: &Instance,
    layout: Layout,
    params: &McfParams,
    options: CompileOptions,
    config: MachineConfig,
) -> Result<(McfResult, RunOutcome), McfError> {
    let binary = compile_mcf(inst, layout, params, options)?;
    let mut machine = Machine::new(config);
    machine.load(&binary.program.image);
    stage_instance(&mut machine, &binary.program, inst);
    let outcome = machine.run(MAX_INSNS, &mut NullHook)?;
    let result = parse_result(&outcome)?;
    Ok((result, outcome))
}

/// Validate an MCF run against the oracle: objective values must
/// agree exactly, and the run must be clean (no dual violations, no
/// residual artificial flow).
pub fn verify_against_oracle(inst: &Instance, result: &McfResult) -> Result<(), String> {
    if result.violations != 0 {
        return Err(format!("{} dual violations", result.violations));
    }
    if result.artificial_flow != 0 {
        return Err(format!(
            "{} units of residual artificial flow",
            result.artificial_flow
        ));
    }
    let problem = McfProblem::from_instance(inst);
    match problem.solve() {
        OracleResult::Optimal { cost, .. } => {
            if cost != result.cost {
                return Err(format!(
                    "objective mismatch: simplex {} vs oracle {}",
                    result.cost, cost
                ));
            }
            Ok(())
        }
        OracleResult::Infeasible => Err("oracle says infeasible".to_string()),
    }
}
