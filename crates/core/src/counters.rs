//! Counter request parsing and slot assignment — the `collect -h`
//! command line of §2.2: `-h +ecstall,lo,+ecrm,on`.
//!
//! A `+` prefix requests the apropos backtracking search for that
//! counter (only meaningful for memory-related counters). The
//! interval may be `hi`/`on`/`lo` (primes, chosen "to reduce the
//! probability of correlations in the profiles") or numeric.

use simsparc_machine::{CounterEvent, NUM_COUNTER_SLOTS};

/// One requested counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterRequest {
    pub event: CounterEvent,
    /// Apropos backtracking search requested (`+` prefix).
    pub backtrack: bool,
    /// Overflow interval in events.
    pub interval: u64,
}

/// Named overflow intervals. On the real tool `hi`/`on`/`lo`
/// correspond to ~1 ms / ~10 ms / ~100 ms for the `cycles` counter at
/// 900 MHz; all values are prime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interval {
    Hi,
    On,
    Lo,
    Custom(u64),
}

impl Interval {
    /// Resolve to a concrete event count for `event`.
    pub fn resolve(self, event: CounterEvent) -> u64 {
        match (self, event.counts_cycles()) {
            (Interval::Custom(n), _) => n,
            (Interval::Hi, true) => 1_000_003,
            (Interval::On, true) => 9_999_991,
            (Interval::Lo, true) => 100_000_007,
            (Interval::Hi, false) => 10_007,
            (Interval::On, false) => 100_003,
            (Interval::Lo, false) => 1_000_003,
        }
    }
}

/// Error from `-h` parsing or slot assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSpecError(pub String);

impl std::fmt::Display for CounterSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad counter specification: {}", self.0)
    }
}

impl std::error::Error for CounterSpecError {}

/// Parse a `collect -h` argument, e.g. `+ecstall,lo,+ecrm,on` or
/// `cycles,1000003` or `+dtlbm,on`.
pub fn parse_counter_spec(spec: &str) -> Result<Vec<CounterRequest>, CounterSpecError> {
    let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
    if !parts.len().is_multiple_of(2) {
        return Err(CounterSpecError(format!(
            "`{spec}`: expected name,interval pairs"
        )));
    }
    let mut out = Vec::with_capacity(parts.len() / 2);
    for pair in parts.chunks(2) {
        let (name, ivl) = (pair[0], pair[1]);
        let (backtrack, name) = match name.strip_prefix('+') {
            Some(rest) => (true, rest),
            None => (false, name),
        };
        let Some(event) = CounterEvent::parse(name) else {
            return Err(CounterSpecError(format!("unknown counter `{name}`")));
        };
        if backtrack && !event.is_memory_event() {
            return Err(CounterSpecError(format!(
                "`+` (backtracking) is only valid for memory-related counters, not `{name}`"
            )));
        }
        let interval = match ivl {
            "hi" | "high" => Interval::Hi,
            "on" => Interval::On,
            "lo" | "low" => Interval::Lo,
            n => match n.parse::<u64>() {
                Ok(v) if v > 0 => Interval::Custom(v),
                _ => {
                    return Err(CounterSpecError(format!("bad interval `{n}`")));
                }
            },
        };
        out.push(CounterRequest {
            event,
            backtrack,
            interval: interval.resolve(event),
        });
    }
    if out.len() > NUM_COUNTER_SLOTS {
        return Err(CounterSpecError(format!(
            "at most {NUM_COUNTER_SLOTS} counters supported, {} requested",
            out.len()
        )));
    }
    Ok(out)
}

/// Assign requests to counter registers, honouring the per-register
/// event constraints ("if two counters are requested, they must be on
/// different registers", §2.2).
pub fn assign_slots(requests: &[CounterRequest]) -> Result<Vec<usize>, CounterSpecError> {
    match requests {
        [] => Ok(vec![]),
        [a] => a
            .event
            .allowed_slots()
            .first()
            .map(|&s| vec![s])
            .ok_or_else(|| CounterSpecError(format!("`{}` unavailable", a.event))),
        [a, b] => {
            for &sa in a.event.allowed_slots() {
                for &sb in b.event.allowed_slots() {
                    if sa != sb {
                        return Ok(vec![sa, sb]);
                    }
                }
            }
            Err(CounterSpecError(format!(
                "counters `{}` and `{}` require the same register; \
                 collect them in separate experiments",
                a.event, b.event
            )))
        }
        _ => Err(CounterSpecError("too many counters".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_experiment_lines() {
        // collect -h +ecstall,lo,+ecrm,on
        let reqs = parse_counter_spec("+ecstall,lo,+ecrm,on").unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].event, CounterEvent::ECStallCycles);
        assert!(reqs[0].backtrack);
        assert_eq!(reqs[0].interval, 100_000_007);
        assert_eq!(reqs[1].event, CounterEvent::ECReadMiss);
        assert_eq!(reqs[1].interval, 100_003);

        // collect -h +ecref,on,+dtlbm,on
        let reqs = parse_counter_spec("+ecref,on,+dtlbm,on").unwrap();
        assert_eq!(reqs[0].event, CounterEvent::ECRef);
        assert_eq!(reqs[1].event, CounterEvent::DTLBMiss);
    }

    #[test]
    fn numeric_intervals() {
        let reqs = parse_counter_spec("cycles,12345").unwrap();
        assert_eq!(reqs[0].interval, 12345);
        assert!(!reqs[0].backtrack);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_counter_spec("nosuch,on").is_err());
        assert!(parse_counter_spec("cycles").is_err());
        assert!(parse_counter_spec("cycles,0").is_err());
        assert!(
            parse_counter_spec("+insts,on").is_err(),
            "insts is not a memory event"
        );
        assert!(parse_counter_spec("cycles,on,insts,on,icm,on").is_err());
    }

    #[test]
    fn slot_assignment_respects_constraints() {
        let reqs = parse_counter_spec("+ecstall,lo,+ecrm,on").unwrap();
        let slots = assign_slots(&reqs).unwrap();
        assert_ne!(slots[0], slots[1]);
        assert!(CounterEvent::ECStallCycles
            .allowed_slots()
            .contains(&slots[0]));
        assert!(CounterEvent::ECReadMiss.allowed_slots().contains(&slots[1]));
    }

    #[test]
    fn conflicting_events_rejected() {
        // dcrm and dtlbm both live on PIC0 only.
        let reqs = parse_counter_spec("+dcrm,on,+dtlbm,on").unwrap();
        assert!(assign_slots(&reqs).is_err());
    }

    #[test]
    fn intervals_are_prime() {
        fn is_prime(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        }
        for ivl in [Interval::Hi, Interval::On, Interval::Lo] {
            assert!(is_prime(ivl.resolve(CounterEvent::Cycles)));
            assert!(is_prime(ivl.resolve(CounterEvent::ECReadMiss)));
        }
    }
}
