//! `mp-opt` — the feedback-directed optimization driver.
//!
//! Closes the loop the paper's §3.3 walks by hand: profile the
//! workload under the simulated counters, derive concrete decisions
//! from the data-object views (structure member reordering/padding,
//! heap allocation alignment, heap page size, prefetch insertion),
//! recompile with `minic` under the grown feedback file, re-profile,
//! and iterate to a fixed point. Every round's profile is first gated
//! through `mp-verify`'s differential oracle so that no decision is
//! derived from corrupted attribution, and every candidate decision
//! must preserve program output bit-for-bit (MCF additionally
//! re-verifies against the min-cost-flow oracle).
//!
//! ```text
//! mp-opt mcf [--trips N] [--window N] [--seed N] [OPTIONS]
//! mp-opt FILE.c [OPTIONS]
//!
//!   --rounds N            max profile->decide->measure rounds (3)
//!   --min-gain PCT        cycle gain a decision must deliver (0.3)
//!   --precision PCT       verify-gate minimum backtracked precision (70)
//!   --spec SPEC[:clock]   counter spec for one profiled run; repeat
//!                         to replace the default E1/E2 pair
//!   --clock-period N      clock-profiling period in cycles (10007)
//!   --ecache-kb N         E$ capacity in KB (default: scaled paper config)
//!   --tlb-entries N       DTLB entries (default: scaled paper config)
//!   --feedback-out FILE   write the final feedback file
//!   --assert-decisions N  exit 1 unless at least N decisions were emitted
//!   --assert-no-regress   exit 1 if the final run is slower than baseline
//! ```

use std::process::exit;

use memprof::mcf::{paper_machine_config, Instance, InstanceParams};
use memprof::opt::{optimize, CSourceWorkload, McfWorkload, OptConfig, Workload};

fn usage(msg: &str) -> ! {
    eprintln!(
        "mp-opt: {msg}\n\
         usage: mp-opt mcf [--trips N] [--window N] [--seed N] [OPTIONS]\n\
         \x20      mp-opt FILE.c [OPTIONS]\n\
         options: --rounds N --min-gain PCT --precision PCT --spec SPEC[:clock]\n\
         \x20        --clock-period N --ecache-kb N --tlb-entries N --feedback-out FILE\n\
         \x20        --assert-decisions N --assert-no-regress"
    );
    exit(2)
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("bad number `{s}`")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut target: Option<String> = None;
    let mut trips = 220usize;
    let mut window = 40usize;
    let mut seed = 18u64;
    let mut rounds = 3usize;
    let mut min_gain_pct = 0.3f64;
    let mut precision = 70.0f64;
    let mut specs: Vec<(String, bool)> = Vec::new();
    let mut clock_period = 10007u64;
    let mut ecache_kb: Option<u64> = None;
    let mut tlb_entries: Option<u32> = None;
    let mut feedback_out: Option<String> = None;
    let mut assert_decisions: Option<usize> = None;
    let mut assert_no_regress = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut arg = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--trips" => trips = parse(&arg("--trips")),
            "--window" => window = parse(&arg("--window")),
            "--seed" => seed = parse(&arg("--seed")),
            "--rounds" => rounds = parse(&arg("--rounds")),
            "--min-gain" => min_gain_pct = parse(&arg("--min-gain")),
            "--precision" => precision = parse(&arg("--precision")),
            "--clock-period" => clock_period = parse(&arg("--clock-period")),
            "--ecache-kb" => ecache_kb = Some(parse(&arg("--ecache-kb"))),
            "--tlb-entries" => tlb_entries = Some(parse(&arg("--tlb-entries"))),
            "--spec" => {
                let raw = arg("--spec");
                let (spec, clock) = match raw.strip_suffix(":clock") {
                    Some(s) => (s.to_string(), true),
                    None => (raw, false),
                };
                specs.push((spec, clock));
            }
            "--feedback-out" => feedback_out = Some(arg("--feedback-out")),
            "--assert-decisions" => assert_decisions = Some(parse(&arg("--assert-decisions"))),
            "--assert-no-regress" => assert_no_regress = true,
            _ if a.starts_with('-') => usage(&format!("unknown option {a}")),
            _ if target.is_some() => usage("more than one workload given"),
            _ => target = Some(a),
        }
    }
    let Some(target) = target else {
        usage("no workload given (mcf or FILE.c)")
    };

    let workload: Box<dyn Workload> = if target == "mcf" {
        Box::new(McfWorkload::new(Instance::generate(InstanceParams {
            n_trips: trips,
            window,
            seed,
            ..Default::default()
        })))
    } else {
        let source = std::fs::read_to_string(&target).unwrap_or_else(|e| {
            eprintln!("mp-opt: cannot read {target}: {e}");
            exit(1)
        });
        Box::new(CSourceWorkload::new(target.clone(), source))
    };

    let mut machine = paper_machine_config();
    if let Some(kb) = ecache_kb {
        machine.ecache.bytes = kb * 1024;
    }
    if let Some(entries) = tlb_entries {
        machine.tlb.entries = entries;
    }
    let mut cfg = OptConfig::for_machine(machine);
    cfg.max_rounds = rounds;
    cfg.min_gain = min_gain_pct / 100.0;
    cfg.verify_min_precision = precision;
    cfg.clock_period_cycles = clock_period;
    if !specs.is_empty() {
        cfg.counter_specs = specs;
    }

    let report = match optimize(workload.as_ref(), &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            exit(1)
        }
    };
    print!("{}", report.render());

    if let Some(path) = feedback_out {
        if let Err(e) = std::fs::write(&path, report.feedback.to_text()) {
            eprintln!("mp-opt: cannot write {path}: {e}");
            exit(1)
        }
    }

    let mut failed = false;
    if let Some(n) = assert_decisions {
        let emitted = report.candidates().count();
        if emitted < n {
            eprintln!("mp-opt: ASSERT: {emitted} decisions emitted, expected >= {n}");
            failed = true;
        }
    }
    if assert_no_regress && report.final_measurement.counts.cycles > report.baseline.counts.cycles {
        eprintln!(
            "mp-opt: ASSERT: final cycles {} regressed over baseline {}",
            report.final_measurement.counts.cycles, report.baseline.counts.cycles
        );
        failed = true;
    }
    if failed {
        exit(1);
    }
}
