//! Acceptance tests for the bounded-memory streaming collection path:
//!
//! * a streamed MCF run and a conventional in-memory run of the same
//!   seeded workload produce byte-identical analyzer views;
//! * any prefix of a stream file with an intact header stays readable
//!   (a crashed run loses at most the unflushed tail);
//! * the `mp-collect --stream` / `mp-store` CLIs round-trip a stream
//!   file into a bundle `mp-er-print` can analyze.

use std::process::Command;

use memprof::machine::Machine;
use memprof::mcf::{self, paper_machine_config, Instance, InstanceParams, Layout, McfParams};
use memprof::minic::CompileOptions;
use memprof::profiler::{
    analyze::Analysis, collect, collect_stream, parse_counter_spec, CollectConfig, StreamConfig,
};
use memprof::store::{aggregate, SegmentWriter, StreamFile};
use simsparc_machine::CounterEvent;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mp_stream_{}_{tag}", std::process::id()))
}

/// The paper's first collection recipe over a small MCF instance. The
/// machine is seeded and deterministic, so two fresh machines replay
/// the identical run.
fn mcf_setup() -> (mcf::McfBinary, Instance, CollectConfig) {
    let inst = Instance::generate(InstanceParams {
        n_trips: 90,
        window: 30,
        seed: 7,
        ..Default::default()
    });
    let binary = mcf::compile_mcf(
        &inst,
        Layout::Baseline,
        &McfParams::default(),
        CompileOptions::profiling(),
    )
    .unwrap();
    let config = CollectConfig {
        counters: parse_counter_spec("+ecstall,4001,+ecrm,101").unwrap(),
        clock_profiling: true,
        clock_period_cycles: 4001,
        max_insns: mcf::MAX_INSNS,
    };
    (binary, inst, config)
}

fn fresh_machine(binary: &mcf::McfBinary, inst: &Instance) -> Machine {
    let mut machine = Machine::new(paper_machine_config());
    machine.load(&binary.program.image);
    mcf::stage_instance(&mut machine, &binary.program, inst);
    machine
}

#[test]
fn streamed_views_are_byte_identical_to_in_memory() {
    let (binary, inst, config) = mcf_setup();

    let exp_mem = collect(&mut fresh_machine(&binary, &inst), &config).unwrap();

    let path = scratch("golden.mpes");
    let mut writer = SegmentWriter::create(&path).unwrap();
    let spill = StreamConfig { spill_events: 512 };
    let stats = collect_stream(
        &mut fresh_machine(&binary, &inst),
        &config,
        &spill,
        &mut writer,
    )
    .unwrap();
    assert!(
        stats.segments_spilled > 1,
        "run must be large enough to spill mid-run (spilled {})",
        stats.segments_spilled
    );
    assert!(
        stats.peak_buffered_events <= 512,
        "peak buffering {} must stay within the spill threshold",
        stats.peak_buffered_events
    );

    let file = StreamFile::open(&path).unwrap();
    assert!(file.is_complete(), "fresh stream file must be complete");
    let exp_stream = file.to_experiment().unwrap();

    // The raw events agree exactly...
    assert_eq!(exp_stream.hwc_events, exp_mem.hwc_events);
    assert_eq!(exp_stream.clock_events, exp_mem.clock_events);
    assert_eq!(exp_stream.run, exp_mem.run);

    // ...and so does every rendered analyzer view, byte for byte.
    let syms = &binary.program.syms;
    let a_mem = Analysis::new(&[&exp_mem], syms);
    let a_str = Analysis::new(&[&exp_stream], syms);
    let user_cpu = a_mem.user_cpu_col().expect("clock profiling on");
    assert_eq!(
        a_str.render_function_list(user_cpu),
        a_mem.render_function_list(user_cpu)
    );
    let ecrm = a_mem
        .col_by_event(CounterEvent::ECReadMiss)
        .expect("ecrm collected");
    assert_eq!(
        a_str.render_pc_list(ecrm, 17),
        a_mem.render_pc_list(ecrm, 17)
    );
    let ecstall = a_mem
        .col_by_event(CounterEvent::ECStallCycles)
        .expect("ecstall collected");
    assert_eq!(
        a_str.render_data_objects(ecstall),
        a_mem.render_data_objects(ecstall)
    );
    assert_eq!(
        aggregate(&[&exp_stream], 1).unwrap().render(),
        aggregate(&[&exp_mem], 1).unwrap().render(),
        "store histograms must agree"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_stream_prefix_stays_readable() {
    let (binary, inst, config) = mcf_setup();
    let path = scratch("prefix.mpes");
    let mut writer = SegmentWriter::create(&path).unwrap();
    let spill = StreamConfig { spill_events: 256 };
    collect_stream(
        &mut fresh_machine(&binary, &inst),
        &config,
        &spill,
        &mut writer,
    )
    .unwrap();

    let bytes = std::fs::read(&path).unwrap();
    let full = StreamFile::from_bytes(bytes.clone()).unwrap();

    // Chop the file as a crash mid-run would: everything before the
    // cut that was flushed as a whole chunk must still be readable.
    let cut = bytes.len() * 7 / 10;
    let file = StreamFile::from_bytes(bytes[..cut].to_vec()).unwrap();
    assert!(!file.is_complete(), "cut file cannot be complete");
    assert!(file.truncation().is_some(), "cut must be diagnosed");
    assert!(file.hwc_total() > 0, "flushed events survive the crash");
    assert!(file.hwc_total() <= full.hwc_total());

    // The prefix still rehydrates into an analyzable experiment with
    // a synthesized run summary and the truncation on record.
    let exp = file.to_experiment().unwrap();
    assert_eq!(exp.run.exit_code, -1, "interrupted run is marked failed");
    assert!(
        exp.log.iter().any(|l| l.contains("stream ended early")),
        "log must record the truncation: {:?}",
        exp.log
    );
    assert!(!Analysis::new(&[&exp], &binary.program.syms)
        .render_function_list(0)
        .is_empty());

    std::fs::remove_file(&path).ok();
}

#[test]
fn cli_stream_collect_feeds_store_and_er_print() {
    let src_path = scratch("demo.c");
    std::fs::write(
        &src_path,
        r#"
        long work(long n) {
            long i; long s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + i; }
            return s;
        }
        long main() {
            long t; long k;
            t = 0;
            for (k = 0; k < 40; k = k + 1) { t = t + work(200); }
            return t % 256;
        }
        "#,
    )
    .unwrap();
    let out_mpes = scratch("cli.mpes");
    let out_dir = scratch("cli_unpacked");
    let _ = std::fs::remove_dir_all(&out_dir);

    let run = |bin: &str, args: &[&str]| -> (String, String) {
        let out = Command::new(bin).args(args).output().unwrap();
        assert!(
            out.status.success(),
            "{bin} {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };

    let (_, stderr) = run(
        env!("CARGO_BIN_EXE_mp-collect"),
        &[
            "--stream",
            out_mpes.to_str().unwrap(),
            "--spill",
            "256",
            "-h",
            "+ecrm,101",
            "--period",
            "1499",
            src_path.to_str().unwrap(),
        ],
    );
    assert!(stderr.contains("segments spilled"), "{stderr}");

    let mp_store = env!("CARGO_BIN_EXE_mp-store");
    let (stat, _) = run(mp_store, &["stat", out_mpes.to_str().unwrap()]);
    assert!(stat.contains("User CPU"), "{stat}");
    assert!(stat.contains("E$ Read Misses"), "{stat}");

    // Unpacking carries the attached image/symbols, so the bundle is
    // analyzable standalone.
    run(
        mp_store,
        &[
            "unpack",
            out_mpes.to_str().unwrap(),
            out_dir.to_str().unwrap(),
        ],
    );
    let (functions, _) = run(
        env!("CARGO_BIN_EXE_mp-er-print"),
        &[out_dir.to_str().unwrap(), "functions"],
    );
    assert!(functions.contains("<Total>"), "{functions}");
    assert!(functions.contains("work"), "{functions}");

    std::fs::remove_file(&src_path).ok();
    std::fs::remove_file(&out_mpes).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}
