//! End-to-end test of the command-line tools: `mp-collect` writes an
//! experiment bundle, `mp-er-print` analyzes it standalone — the
//! paper's two-command user model.

use std::process::Command;

fn collect_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mp-collect")
}

fn er_print_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mp-er-print")
}

fn workload_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("workloads/particles.c")
}

fn temp_exp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mp_cli_{}_{tag}", std::process::id()))
}

/// A smaller workload for test speed.
fn small_workload(dir: &std::path::Path) -> std::path::PathBuf {
    let src = std::fs::read_to_string(workload_path())
        .unwrap()
        .replace("long n = 250000;", "long n = 60000;");
    let p = dir.join("particles_small.c");
    std::fs::write(&p, src).unwrap();
    p
}

#[test]
fn collect_then_er_print() {
    let exp = temp_exp_dir("main");
    let _ = std::fs::remove_dir_all(&exp);
    std::fs::create_dir_all(&exp).unwrap();
    let src = small_workload(&exp);

    // mp-collect
    let out = Command::new(collect_bin())
        .args([
            "-o",
            exp.to_str().unwrap(),
            "-h",
            "+ecstall,4001,+ecrm,101",
            "-p",
            "on",
            "--period",
            "4001",
        ])
        .arg(&src)
        .output()
        .expect("run mp-collect");
    assert!(
        out.status.success(),
        "mp-collect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for file in [
        "log",
        "counters",
        "hwcdata",
        "clockdata",
        "run",
        "image.txt",
        "syms.txt",
    ] {
        assert!(exp.join(file).exists(), "missing {file}");
    }

    // mp-er-print views.
    let run_view = |args: &[&str]| -> String {
        let out = Command::new(er_print_bin())
            .arg(exp.to_str().unwrap())
            .args(args)
            .output()
            .expect("run mp-er-print");
        assert!(
            out.status.success(),
            "mp-er-print {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    let functions = run_view(&["functions", "cpu"]);
    assert!(functions.contains("<Total>"), "{functions}");
    assert!(functions.contains("main"), "{functions}");

    let objects = run_view(&["data_objects", "ecstall"]);
    assert!(objects.contains("{structure:particle -}"), "{objects}");

    let expansion = run_view(&["struct", "particle"]);
    assert!(expansion.contains("+16 {long vx}"), "{expansion}");

    let disasm = run_view(&["disasm", "main"]);
    assert!(disasm.contains("ldx"), "{disasm}");
    assert!(disasm.contains("{structure:particle -}"), "{disasm}");

    let source = run_view(&["source", "main"]);
    assert!(source.contains("p->x = p->x + p->vx;"), "{source}");

    let eff = run_view(&["effectiveness"]);
    assert!(eff.contains("% effective"), "{eff}");

    let header = run_view(&["header"]);
    assert!(header.contains("collect start"), "{header}");

    let segments = run_view(&["segments"]);
    assert!(segments.contains("heap"), "{segments}");

    std::fs::remove_dir_all(&exp).ok();
}

#[test]
fn collect_with_no_args_lists_counters() {
    let out = Command::new(collect_bin()).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["ecstall", "ecrm", "ecref", "dtlbm", "cycles"] {
        assert!(text.contains(name), "missing counter {name} in: {text}");
    }
}

#[test]
fn er_print_rejects_bad_input() {
    let out = Command::new(er_print_bin())
        .args(["functions"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "must fail without an experiment dir");

    let exp = temp_exp_dir("bad");
    let _ = std::fs::remove_dir_all(&exp);
    std::fs::create_dir_all(&exp).unwrap();
    let out = Command::new(er_print_bin())
        .args([exp.to_str().unwrap(), "functions"])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "must fail on an empty experiment dir"
    );
    std::fs::remove_dir_all(&exp).ok();
}
