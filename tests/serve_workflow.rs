//! End-to-end test of the always-on service binaries: an `mp-serve`
//! daemon on loopback, two concurrent `mp-collect --connect` runs
//! streaming into different windows, an on-demand compaction, and the
//! acceptance criterion of the service — query answers byte-identical
//! to the offline `mp-store` toolchain run on the compacted stores.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn serve_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mp-serve")
}

fn collect_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mp-collect")
}

fn store_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mp-store")
}

fn workload_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("workloads/particles.c")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mp_serve_wf_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A smaller workload for test speed; `n` varies per collector so the
/// two windows hold different profiles.
fn small_workload(dir: &std::path::Path, tag: &str, n: u64) -> std::path::PathBuf {
    let src = std::fs::read_to_string(workload_path())
        .unwrap()
        .replace("long n = 250000;", &format!("long n = {n};"));
    let p = dir.join(format!("particles_{tag}.c"));
    std::fs::write(&p, src).unwrap();
    p
}

/// Kills the daemon when the test ends, pass or fail.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_daemon(data: &std::path::Path) -> (DaemonGuard, String) {
    start_daemon_with(data, &[])
}

fn start_daemon_with(data: &std::path::Path, extra: &[&str]) -> (DaemonGuard, String) {
    let port_file = data.join("port");
    let child = Command::new(serve_bin())
        .args([
            "daemon",
            "--listen",
            "127.0.0.1:0",
            "--data",
            data.to_str().unwrap(),
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mp-serve");
    let guard = DaemonGuard(child);
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if text.ends_with('\n') {
                break text.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (guard, addr)
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn tool");
    assert!(
        out.status.success(),
        "{cmd:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("tool output is UTF-8")
}

fn query(addr: &str, q: &[&str]) -> String {
    let mut cmd = Command::new(serve_bin());
    cmd.arg("query").arg(addr).args(q);
    run_ok(&mut cmd)
}

#[test]
fn daemon_serves_two_concurrent_collectors_and_matches_offline_tools() {
    let data = scratch("daemon");
    let (_daemon, addr) = start_daemon(&data);

    // Two collectors stream concurrently into different windows.
    let collectors: Vec<_> = [("wa", 60_000u64), ("wb", 40_000u64)]
        .into_iter()
        .map(|(window, n)| {
            let src = small_workload(&data, window, n);
            let addr = addr.clone();
            let window = window.to_string();
            std::thread::spawn(move || {
                let out = Command::new(collect_bin())
                    .args([
                        "--connect",
                        &addr,
                        "--window",
                        &window,
                        "-h",
                        "+ecstall,4001,+ecrm,101",
                        "-p",
                        "on",
                        "--period",
                        "4001",
                    ])
                    .arg(&src)
                    .output()
                    .expect("run mp-collect");
                assert!(
                    out.status.success(),
                    "mp-collect --connect failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
            })
        })
        .collect();
    for c in collectors {
        c.join().unwrap();
    }

    // Both sessions landed as complete raw segments.
    let raw_count = |w: &str| {
        std::fs::read_dir(data.join("raw").join(w))
            .map(|d| d.count())
            .unwrap_or(0)
    };
    assert_eq!(raw_count("wa"), 1);
    assert_eq!(raw_count("wb"), 1);

    // Force compaction; both windows fold into packed stores.
    let report = query(&addr, &["compact"]);
    assert!(report.contains("compacted wa: 1 raw segments"), "{report}");
    assert!(report.contains("compacted wb: 1 raw segments"), "{report}");
    let packed_wa = data.join("packed").join("wa.mps");
    let packed_wb = data.join("packed").join("wb.mps");
    assert!(packed_wa.exists() && packed_wb.exists());

    // Acceptance criterion 1: the functions-view query is
    // byte-identical to offline `mp-store stat --json` on the
    // compacted store.
    let served = query(&addr, &["functions", "wa"]);
    let offline =
        run_ok(Command::new(store_bin()).args(["stat", "--json", packed_wa.to_str().unwrap()]));
    assert_eq!(served, offline, "functions query != mp-store stat --json");
    assert!(served.contains("\"functions\""), "no symbols resolved");

    // Acceptance criterion 2: the windowed diff matches `mp-store
    // diff` on the packed stores.
    let served_diff = query(&addr, &["diff", "wa", "wb"]);
    let offline_diff = run_ok(Command::new(store_bin()).args([
        "diff",
        packed_wa.to_str().unwrap(),
        packed_wb.to_str().unwrap(),
    ]));
    assert_eq!(served_diff, offline_diff, "diff query != mp-store diff");

    // The analyzer views answer over the compacted windows.
    let objects = query(&addr, &["objects", "wa"]);
    assert!(!objects.trim().is_empty(), "empty data-object view");
    let segments = query(&addr, &["segments", "wa"]);
    assert!(segments.contains("events"), "{segments}");

    // A second compaction pass has nothing to do.
    let report = query(&addr, &["compact"]);
    assert!(report.contains("nothing to compact"), "{report}");

    // Clean daemon shutdown through the protocol.
    assert_eq!(query(&addr, &["shutdown"]), "shutting down\n");
}

/// `mp-serve watch` follows a window live: one frame on subscribe
/// (empty window), another once a collector's session seals, clean
/// exit when the daemon shuts down. The daemon runs with the
/// connection-hygiene flags to prove they parse and serve.
#[test]
fn watch_subcommand_streams_frames_until_shutdown() {
    use std::io::BufRead as _;

    let data = scratch("watch");
    let (_daemon, addr) = start_daemon_with(&data, &["--max-conns", "64", "--idle-secs", "30"]);

    let mut watch = Command::new(serve_bin())
        .args(["watch", &addr, "wa"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mp-serve watch");
    let mut lines = std::io::BufReader::new(watch.stdout.take().unwrap()).lines();

    // First frame arrives before any data: the empty-window form.
    let mut first = String::new();
    for line in lines.by_ref() {
        let line = line.unwrap();
        if line == "---" {
            break;
        }
        first.push_str(&line);
        first.push('\n');
    }
    assert!(
        first.contains("window wa generation") && first.contains("events 0"),
        "unexpected first frame: {first}"
    );

    // A collector session seals into the window; the next frame
    // carries its profile.
    let src = small_workload(&data, "wa", 40_000);
    let out = Command::new(collect_bin())
        .args([
            "--connect",
            &addr,
            "--window",
            "wa",
            "-h",
            "+ecstall,4001",
            "--period",
            "4001",
        ])
        .arg(&src)
        .output()
        .expect("run mp-collect");
    assert!(
        out.status.success(),
        "mp-collect --connect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut second = String::new();
    for line in lines.by_ref() {
        let line = line.unwrap();
        if line == "---" {
            break;
        }
        second.push_str(&line);
        second.push('\n');
    }
    assert!(
        second.contains("window wa generation") && !second.contains("events 0"),
        "frame after seal still empty: {second}"
    );

    // Daemon shutdown ends the stream and the watch exits cleanly.
    assert_eq!(query(&addr, &["shutdown"]), "shutting down\n");
    let status = watch.wait().expect("wait for mp-serve watch");
    assert!(status.success(), "watch exited with {status}");
}
