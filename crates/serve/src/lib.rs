//! memprof-serve — an always-on profiling aggregation service.
//!
//! The paper's workflow is batch: run `collect`, get an experiment,
//! analyze it offline. This crate turns that into a service for
//! fleet-style profiling: a daemon (`mp-serve`) that accepts MPES v2
//! event streams from many concurrent collectors over a socket
//! ([`wire`]), lands them as raw segments with the same crash-safety
//! guarantees as local streaming ([`server`]), folds them into
//! per-window packed stores and summaries in the background
//! ([`compact`], [`store`], [`summary`]), and answers analyzer-view
//! queries from the tiers ([`query`]). Tier access is coordinated
//! per window ([`registry`]): compaction of one window never blocks
//! ingest, queries, or live `watch` subscriptions on another, and
//! retention ([`retention`]) bounds the raw tier by aging idle
//! windows through the same compaction path.
//!
//! The design invariant throughout is *offline equivalence*: every
//! artifact the daemon produces is byte-identical to what the offline
//! tools would have produced from the same inputs — a landed raw
//! segment matches `mp-collect --stream` output, a compacted store
//! matches `mp-store merge` over the same segments, and query answers
//! match `mp-store stat --json` / `mp-store diff` on those stores.
//! The service adds availability, not a second format.

pub mod compact;
pub mod query;
pub mod registry;
pub mod retention;
pub mod server;
pub mod sink;
pub mod store;
pub mod summary;
pub mod wire;

pub use compact::{
    compact_all, compact_all_registered, compact_window, compact_window_registered, CompactCache,
    CompactReport,
};
pub use query::{answer, watch_frame, window_aggregate, window_syms, QueryOutcome};
pub use registry::{ExclusiveGuard, SharedGuard, WindowRegistry, WindowState};
pub use retention::{enforce_retention, RetentionPolicy, RetentionReport};
pub use server::{query, watch, Server, ServerConfig, WatchClient};
pub use sink::SocketSink;
pub use store::{parse_manifest, render_manifest, Manifest, RawTier, StoreDirs};
pub use summary::{parse_summary, read_summary, render_summary, write_summary};
