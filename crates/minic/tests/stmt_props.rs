//! Differential property testing at the statement level: random
//! structured programs (assignments, global-array loads/stores,
//! `if`/`else`, bounded `for` loops, nested blocks) are compiled and
//! run on the simulated machine, then compared against a direct Rust
//! interpreter. This exercises control-flow codegen, the delay-slot
//! and padding passes, addressing modes and the branch machinery in
//! combination — places where expression-level testing cannot reach.

use proptest::prelude::*;

use minic::{compile_and_link, CompileOptions};
use simsparc_machine::{Machine, MachineConfig, NullHook};

const NVARS: usize = 4;
const ARR: usize = 16;

/// Simple expressions over the variables and the array.
#[derive(Clone, Debug)]
enum E {
    Const(i64),
    Var(usize),
    /// `g[|e| % ARR]`
    Arr(Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
}

#[derive(Clone, Debug)]
enum S {
    /// `v[i] = e;`
    Assign(usize, E),
    /// `g[|e1| % ARR] = e2;`
    Store(E, E),
    If(E, Vec<S>, Vec<S>),
    /// `for (lk = 0; lk < n; lk = lk + 1) body` — the loop counter is
    /// a reserved variable per nesting depth, so loops always
    /// terminate.
    For(u8, Vec<S>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Const(v) if *v < 0 => format!("(0 - {})", -v),
            E::Const(v) => v.to_string(),
            E::Var(i) => format!("v{i}"),
            E::Arr(e) => format!("g[idx({})]", e.render()),
            E::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            E::Sub(l, r) => format!("({} - {})", l.render(), r.render()),
            E::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
            E::Lt(l, r) => format!("({} < {})", l.render(), r.render()),
            E::Eq(l, r) => format!("({} == {})", l.render(), r.render()),
        }
    }

    fn eval(&self, vars: &[i64; NVARS], arr: &[i64; ARR]) -> i64 {
        match self {
            E::Const(v) => *v,
            E::Var(i) => vars[*i],
            E::Arr(e) => {
                let i = e.eval(vars, arr).unsigned_abs() as usize % ARR;
                arr[i]
            }
            E::Add(l, r) => l.eval(vars, arr).wrapping_add(r.eval(vars, arr)),
            E::Sub(l, r) => l.eval(vars, arr).wrapping_sub(r.eval(vars, arr)),
            E::Mul(l, r) => l.eval(vars, arr).wrapping_mul(r.eval(vars, arr)),
            E::Lt(l, r) => (l.eval(vars, arr) < r.eval(vars, arr)) as i64,
            E::Eq(l, r) => (l.eval(vars, arr) == r.eval(vars, arr)) as i64,
        }
    }
}

fn render_stmts(stmts: &[S], depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            S::Assign(i, e) => out.push_str(&format!("{pad}v{i} = {};\n", e.render())),
            S::Store(i, e) => {
                out.push_str(&format!("{pad}g[idx({})] = {};\n", i.render(), e.render()))
            }
            S::If(c, t, f) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.render()));
                render_stmts(t, depth + 1, out);
                if f.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render_stmts(f, depth + 1, out);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            S::For(n, body) => {
                let lv = format!("lk{depth}");
                out.push_str(&format!(
                    "{pad}for ({lv} = 0; {lv} < {n}; {lv} = {lv} + 1) {{\n"
                ));
                render_stmts(body, depth + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn interp(stmts: &[S], vars: &mut [i64; NVARS], arr: &mut [i64; ARR]) {
    for s in stmts {
        match s {
            S::Assign(i, e) => vars[*i] = e.eval(vars, arr),
            S::Store(i, e) => {
                let idx = i.eval(vars, arr).unsigned_abs() as usize % ARR;
                arr[idx] = e.eval(vars, arr);
            }
            S::If(c, t, f) => {
                if c.eval(vars, arr) != 0 {
                    interp(t, vars, arr);
                } else {
                    interp(f, vars, arr);
                }
            }
            S::For(n, body) => {
                for _ in 0..*n {
                    interp(body, vars, arr);
                }
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(E::Const),
        (0usize..NVARS).prop_map(E::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| E::Arr(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Lt(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Eq(Box::new(l), Box::new(r))),
        ]
    })
}

fn arb_stmts() -> impl Strategy<Value = Vec<S>> {
    let stmt = prop_oneof![
        ((0usize..NVARS), arb_expr()).prop_map(|(i, e)| S::Assign(i, e)),
        (arb_expr(), arb_expr()).prop_map(|(i, e)| S::Store(i, e)),
    ]
    .prop_recursive(3, 24, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 1..4);
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, f)| S::If(c, t, f)),
            ((1u8..6), block).prop_map(|(n, b)| S::For(n, b)),
        ]
    });
    prop::collection::vec(stmt, 1..8)
}

/// Render the full program: `idx` computes `|x| % ARR` safely.
fn render_program(stmts: &[S], init: &[i64; NVARS]) -> String {
    let mut body = String::new();
    render_stmts(stmts, 1, &mut body);
    let decls: String = (0..NVARS)
        .map(|i| {
            let v = init[i];
            if v < 0 {
                format!("    long v{i} = (0 - {});\n", -v)
            } else {
                format!("    long v{i} = {v};\n")
            }
        })
        .collect();
    let loop_decls: String = (0..5).map(|d| format!("    long lk{d};\n")).collect();
    format!(
        r#"
long g[{ARR}];

long idx(long x) {{
    if (x < 0) {{ x = 0 - x; }}
    return x % {ARR};
}}

long main() {{
{decls}{loop_decls}
{body}
    long h = 0;
    long i;
    for (i = 0; i < {ARR}; i = i + 1) {{ h = h * 31 + g[i]; }}
    h = h * 31 + v0;
    h = h * 31 + v1;
    h = h * 31 + v2;
    h = h * 31 + v3;
    return h;
}}
"#
    )
}

/// The interpreter's version of the final hash.
fn interp_hash(stmts: &[S], init: &[i64; NVARS]) -> i64 {
    let mut vars = *init;
    let mut arr = [0i64; ARR];
    interp(stmts, &mut vars, &mut arr);
    let mut h: i64 = 0;
    for v in arr {
        h = h.wrapping_mul(31).wrapping_add(v);
    }
    for v in vars {
        h = h.wrapping_mul(31).wrapping_add(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compiled_programs_match_interpreter(
        stmts in arb_stmts(),
        init in [any::<i16>(), any::<i16>(), any::<i16>(), any::<i16>()],
    ) {
        let init = [init[0] as i64, init[1] as i64, init[2] as i64, init[3] as i64];
        let src = render_program(&stmts, &init);
        let expected = interp_hash(&stmts, &init);

        for options in [CompileOptions::default(), CompileOptions::profiling()] {
            // mini-C documents an "expression too complex" limit (like
            // the era's C compilers): pathological nesting may exceed
            // the 11-register scratch pool and is rejected with a
            // clear error, never miscompiled. Such cases are
            // discarded; any other failure is a real bug.
            let program = match compile_and_link(&[("stmt.c", &src)], options) {
                Ok(p) => p,
                Err(e) if e.to_string().contains("expression too complex") => {
                    return Err(TestCaseError::reject("expression exceeds scratch pool"));
                }
                Err(e) => {
                    return Err(TestCaseError::fail(format!("compile failed: {e}\n{src}")));
                }
            };
            let mut machine = Machine::new(MachineConfig::default());
            machine.load(&program.image);
            let out = machine
                .run(50_000_000, &mut NullHook)
                .map_err(|e| TestCaseError::fail(format!("run failed: {e}\n{src}")))?;
            prop_assert_eq!(out.exit_code, expected, "program:\n{}", src);
        }
    }
}
