//! Quickstart: the paper's three-step user model (§2) in one file.
//!
//! 1. compile the target with `-xhwcprof -xdebugformat=dwarf`,
//! 2. collect an experiment with counter-overflow + clock profiling,
//! 3. analyze: function list, then the data-object view.
//!
//! Run with: `cargo run --release --example quickstart`

use memprof::machine::{CounterEvent, Machine, MachineConfig};
use memprof::minic::{compile_and_link, CompileOptions};
use memprof::profiler::{analyze::Analysis, collect, parse_counter_spec, CollectConfig};

const PROGRAM: &str = r#"
extern char *malloc(long nbytes);

struct particle {
    long x;
    long y;
    long vx;
    long vy;
    long mass;
    long charge;
};

long main() {
    struct particle *ps = (struct particle*)malloc(250000 * sizeof(struct particle));
    struct particle *p;
    struct particle *end = ps + 250000;
    long step;
    long energy = 0;
    for (p = ps; p < end; p = p + 1) {
        p->x = (long)p % 97;
        p->y = (long)p % 89;
        p->vx = 1;
        p->vy = 2;
        p->mass = 3;
        p->charge = 1;
    }
    for (step = 0; step < 6; step = step + 1) {
        for (p = ps; p < end; p = p + 1) {
            p->x = p->x + p->vx;
            p->y = p->y + p->vy;
            energy = energy + p->mass * (p->vx * p->vx + p->vy * p->vy);
        }
    }
    print_long(energy);
    return 0;
}
"#;

fn main() {
    // Step 1: compile for memory profiling.
    let program = compile_and_link(&[("particles.c", PROGRAM)], CompileOptions::profiling())
        .expect("compile");

    // Step 2: collect. E$ stall cycles and E$ read misses with the
    // apropos backtracking search (`+` prefix), plus clock profiling.
    let mut machine = Machine::new(MachineConfig::default());
    machine.load(&program.image);
    let config = CollectConfig {
        counters: parse_counter_spec("+ecstall,20011,+ecrm,101").expect("counter spec"),
        clock_profiling: true,
        clock_period_cycles: 10007,
        ..CollectConfig::default()
    };
    let experiment = collect(&mut machine, &config).expect("collect");
    println!(
        "collected {} counter events and {} clock ticks (program output: {})",
        experiment.hwc_events.len(),
        experiment.clock_events.len(),
        experiment.run.output.trim()
    );

    // Step 3: analyze.
    let analysis = Analysis::new(&[&experiment], &program.syms);

    println!("--- function list (by E$ stall) ---");
    let col = analysis
        .col_by_event(CounterEvent::ECStallCycles)
        .expect("ecstall column");
    print!("{}", analysis.render_function_list(col));

    println!("\n--- data objects ---");
    print!("{}", analysis.render_data_objects(col));

    println!("\n--- structure:particle members ---");
    print!(
        "{}",
        analysis
            .render_struct_expansion("particle")
            .expect("particle is known")
    );
}
