//! `mp-er-print` — the `er_print` command (§2.3): analyze one or more
//! experiment directories written by `mp-collect`.
//!
//! ```text
//! mp-er-print EXPDIR [EXPDIR2 ...] VIEW [ARGS]
//!
//! views:
//!   header                 collection parameters and run summary
//!   total                  Figure 1-style <Total> metrics
//!   functions [COL]        Figure 2-style function list
//!   pcs [COL] [N]          Figure 5-style PC ranking
//!   source FUNC            Figure 3-style annotated source
//!   disasm FUNC            Figure 4-style annotated disassembly
//!   data_objects [COL]     Figure 6-style data-object view
//!   struct NAME            Figure 7-style member expansion
//!   callers FUNC           §2.3 callers/callees view
//!   effectiveness          §3.2.5 backtracking effectiveness
//!   hot_lines [COL] [N]    hottest source lines program-wide
//!   segments               §4 memory-segment view
//!   lines [N]              §4 hottest E$ lines
//! ```
//!
//! COL is a counter name (`ecstall`, `ecrm`, `ecref`, `dtlbm`, ...);
//! the default is the first column.

use std::path::PathBuf;
use std::process::exit;

use memprof::machine::{CounterEvent, Image};
use memprof::minic::SymbolTable;
use memprof::profiler::{analyze::Analysis, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = |msg: &str| -> ! {
        eprintln!("mp-er-print: {msg}\nusage: mp-er-print EXPDIR... VIEW [ARGS]");
        exit(2)
    };
    // Split: leading existing directories are experiments, the rest is
    // the view command.
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    for a in args {
        if rest.is_empty() && PathBuf::from(&a).is_dir() {
            dirs.push(PathBuf::from(a));
        } else {
            rest.push(a);
        }
    }
    if dirs.is_empty() {
        usage("no experiment directory given");
    }
    if rest.is_empty() {
        usage("no view given");
    }

    let experiments: Vec<Experiment> = dirs
        .iter()
        .map(|d| {
            Experiment::load(d).unwrap_or_else(|e| {
                eprintln!("mp-er-print: cannot load {}: {e}", d.display());
                exit(1)
            })
        })
        .collect();
    let syms = SymbolTable::load(&dirs[0].join("syms.txt")).unwrap_or_else(|e| {
        eprintln!("mp-er-print: cannot load symbols: {e}");
        exit(1)
    });
    let image = Image::load(&dirs[0].join("image.txt")).unwrap_or_else(|e| {
        eprintln!("mp-er-print: cannot load image: {e}");
        exit(1)
    });

    let refs: Vec<&Experiment> = experiments.iter().collect();
    let analysis = Analysis::new(&refs, &syms);

    let col_for = |name: Option<&String>| -> usize {
        match name {
            None => 0,
            Some(n) => match CounterEvent::parse(n) {
                Some(ev) => analysis
                    .col_by_event(ev)
                    .unwrap_or_else(|| usage(&format!("counter `{n}` not in these experiments"))),
                None if n == "cpu" => analysis
                    .user_cpu_col()
                    .unwrap_or_else(|| usage("no clock profiling in these experiments")),
                None => usage(&format!("unknown counter `{n}`")),
            },
        }
    };

    match rest[0].as_str() {
        "header" => {
            for (d, e) in dirs.iter().zip(&experiments) {
                println!("experiment {}:", d.display());
                for line in &e.log {
                    println!("  {line}");
                }
                println!(
                    "  exit {}, {} hwc events, {} clock ticks, {} dropped",
                    e.run.exit_code,
                    e.hwc_events.len(),
                    e.clock_events.len(),
                    e.run.dropped.iter().sum::<u64>()
                );
            }
        }
        "total" => print!("{}", analysis.total_metrics().render()),
        "functions" => {
            let col = col_for(rest.get(1));
            print!("{}", analysis.render_function_list(col));
        }
        "pcs" => {
            let col = col_for(rest.get(1));
            let n = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
            print!("{}", analysis.render_pc_list(col, n));
        }
        "source" => {
            let f = rest.get(1).unwrap_or_else(|| usage("source FUNC"));
            match analysis.render_annotated_source(f) {
                Some(s) => print!("{s}"),
                None => usage(&format!("unknown function `{f}`")),
            }
        }
        "disasm" => {
            let f = rest.get(1).unwrap_or_else(|| usage("disasm FUNC"));
            match analysis.render_annotated_disasm(f, &image.text) {
                Some(s) => print!("{s}"),
                None => usage(&format!("unknown function `{f}`")),
            }
        }
        "data_objects" => {
            let col = col_for(rest.get(1));
            print!("{}", analysis.render_data_objects(col));
        }
        "struct" => {
            let name = rest.get(1).unwrap_or_else(|| usage("struct NAME"));
            match analysis.render_struct_expansion(name) {
                Some(s) => print!("{s}"),
                None => usage(&format!("unknown struct `{name}`")),
            }
        }
        "callers" => {
            let f = rest.get(1).unwrap_or_else(|| usage("callers FUNC"));
            print!("{}", analysis.render_callers_callees(f));
        }
        "effectiveness" => {
            for e in analysis.effectiveness() {
                println!(
                    "{:<18} {:>7} events  {:>5} unresolvable  {:>5} unascertainable  {:>6.1}% effective",
                    e.title, e.total, e.unresolvable, e.unascertainable, e.effectiveness_pct
                );
            }
        }
        "hot_lines" => {
            let col = col_for(rest.get(1));
            let n = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(15);
            for r in analysis.hot_lines(col, n) {
                println!(
                    "{:>7}  {}:{}  {}",
                    r.samples[col], r.function, r.line_no, r.text
                );
            }
        }
        "segments" => {
            for row in analysis.segments() {
                println!(
                    "{:>6}: {:>8} events",
                    row.segment.name(),
                    row.samples.iter().sum::<u64>()
                );
            }
        }
        "lines" => {
            let n = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
            for row in analysis.cache_lines(512, n) {
                println!(
                    "{:#012x}: {:>6} events",
                    row.line_base,
                    row.samples.iter().sum::<u64>()
                );
            }
        }
        other => usage(&format!("unknown view `{other}`")),
    }
}
