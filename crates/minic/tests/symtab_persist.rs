//! Round-trip the symbol table of a real compiled program through its
//! text serialization and check that analysis-relevant queries agree.

use minic::{compile_and_link, CompileOptions, SymbolTable};

const SRC: &str = r#"
extern char *malloc(long nbytes);
typedef long cost_t;
struct arc { cost_t cost; long ident; };
struct node {
    long number;
    struct node *pred;
    struct arc *basic_arc;
    cost_t potential;
};
long counter;
long table[8];
long helper(struct node *n) {
    return n->basic_arc->cost + n->potential;
}
long main() {
    struct node *n = (struct node*)malloc(sizeof(struct node));
    n->basic_arc = (struct arc*)malloc(sizeof(struct arc));
    n->basic_arc->cost = 7;
    n->potential = 35;
    counter = helper(n);
    table[3] = counter;
    return counter % 256;
}
"#;

#[test]
fn symbol_table_round_trips() {
    let program = compile_and_link(&[("persist.c", SRC)], CompileOptions::profiling()).unwrap();
    let t = &program.syms;
    let path = std::env::temp_dir().join(format!("syms_{}.txt", std::process::id()));
    t.save(&path).unwrap();
    let loaded = SymbolTable::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.text_base, t.text_base);
    assert_eq!(loaded.modules.len(), t.modules.len());
    assert_eq!(loaded.funcs.len(), t.funcs.len());
    assert_eq!(loaded.pc_meta.len(), t.pc_meta.len());
    assert_eq!(loaded.structs.len(), t.structs.len());
    assert_eq!(loaded.globals.len(), t.globals.len());

    // Module flags and source survive.
    for (a, b) in loaded.modules.iter().zip(&t.modules) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.hwcprof, b.hwcprof);
        assert_eq!(a.dwarf, b.dwarf);
        assert_eq!(a.source, b.source);
    }

    // Per-PC queries agree everywhere.
    let end = t.text_base + 4 * t.pc_meta.len() as u64;
    let mut pc = t.text_base;
    while pc < end {
        assert_eq!(loaded.line_at(pc), t.line_at(pc), "line at {pc:#x}");
        assert_eq!(
            loaded.is_branch_target(pc),
            t.is_branch_target(pc),
            "bt at {pc:#x}"
        );
        assert_eq!(
            loaded.meta_at(pc).map(|m| &m.memdesc),
            t.meta_at(pc).map(|m| &m.memdesc),
            "desc at {pc:#x}"
        );
        assert_eq!(
            loaded.func_at(pc).map(|f| &f.name),
            t.func_at(pc).map(|f| &f.name)
        );
        pc += 4;
    }

    // Struct layouts for the Figure 7 view.
    let n0 = t.struct_by_name("node").unwrap();
    let n1 = loaded.struct_by_name("node").unwrap();
    assert_eq!(n0.size, n1.size);
    for (a, b) in n0.fields.iter().zip(&n1.fields) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.offset, b.offset);
        assert_eq!(a.type_desc, b.type_desc);
    }

    // Globals.
    assert_eq!(loaded.global_addr("counter"), t.global_addr("counter"));
    assert_eq!(loaded.global_addr("table"), t.global_addr("table"));
}
