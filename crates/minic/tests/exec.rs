//! End-to-end execution tests: compile mini-C programs, run them on
//! the simulated machine, and check results — under *all four*
//! combinations of `-xhwcprof` and `-O` (the §2.1 codegen changes must
//! never alter program semantics).

use minic::{compile_and_link, CompileOptions};
use simsparc_machine::{Machine, MachineConfig, NullHook};

/// Compile and run under the given options; returns (exit, output).
fn run_with(src: &str, options: CompileOptions) -> (i64, String) {
    let program = compile_and_link(&[("test.c", src)], options)
        .unwrap_or_else(|e| panic!("compile failed: {e}"));
    let mut m = Machine::new(MachineConfig::default());
    m.load(&program.image);
    let out = m
        .run(200_000_000, &mut NullHook)
        .unwrap_or_else(|e| panic!("run failed: {e}"));
    (out.exit_code, out.output)
}

/// Run under every option combination and require identical results.
fn run(src: &str) -> (i64, String) {
    let variants = [
        CompileOptions::default(),
        CompileOptions::profiling(),
        CompileOptions {
            hwcprof: true,
            dwarf: true,
            prefetch: false,
            opt: false,
        },
        CompileOptions {
            hwcprof: false,
            dwarf: false,
            prefetch: false,
            opt: false,
        },
    ];
    let results: Vec<(i64, String)> = variants.iter().map(|o| run_with(src, *o)).collect();
    for w in results.windows(2) {
        assert_eq!(w[0], w[1], "option combinations disagree");
    }
    results.into_iter().next().unwrap()
}

#[test]
fn arithmetic_and_precedence() {
    let (code, _) = run("long main() { return 2 + 3 * 4 - 10 / 2; }");
    assert_eq!(code, 9);
}

#[test]
fn division_truncates_and_rem() {
    let (code, _) = run("long main() { return (17 / 5) * 100 + 17 % 5; }");
    assert_eq!(code, 302);
    let (code, _) = run("long main() { return (0 - 17) / 5; }");
    assert_eq!(code, -3);
}

#[test]
fn bitwise_and_shifts() {
    let (code, _) = run("long main() { return ((5 & 3) << 4) | (8 >> 2) ^ 1; }");
    assert_eq!(code, ((5 & 3) << 4) | ((8 >> 2) ^ 1));
}

#[test]
fn comparisons_as_values() {
    let (code, _) = run(
        "long main() { return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 5) + (5 == 5) + (6 != 6); }",
    );
    assert_eq!(code, 3);
}

#[test]
fn short_circuit_semantics() {
    // boom() would divide by zero if evaluated.
    let src = r#"
        long boom() { long z; z = 0; return 1 / z; }
        long main() {
            long a = 0;
            if (a && boom()) { return 1; }
            if (1 || boom()) { return 42; }
            return 2;
        }
    "#;
    let (code, _) = run(src);
    assert_eq!(code, 42);
}

#[test]
fn while_loop_sum() {
    let src = r#"
        long main() {
            long i = 0;
            long s = 0;
            while (i < 100) { s = s + i; i = i + 1; }
            return s;
        }
    "#;
    assert_eq!(run(src).0, 4950);
}

#[test]
fn for_loop_with_break_continue() {
    let src = r#"
        long main() {
            long i;
            long s = 0;
            for (i = 0; i < 1000; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 20) { break; }
                s = s + i;
            }
            return s;
        }
    "#;
    // 1 + 3 + ... + 19 = 100
    assert_eq!(run(src).0, 100);
}

#[test]
fn nested_loops() {
    let src = r#"
        long main() {
            long i;
            long j;
            long s = 0;
            for (i = 0; i < 10; i = i + 1) {
                for (j = 0; j < 10; j = j + 1) {
                    if (j == i) { continue; }
                    s = s + 1;
                }
            }
            return s;
        }
    "#;
    assert_eq!(run(src).0, 90);
}

#[test]
fn recursion_factorial_and_fib() {
    let src = r#"
        long fact(long n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        long fib(long n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        long main() { return fact(10) + fib(15); }
    "#;
    assert_eq!(run(src).0, 3628800 + 610);
}

#[test]
fn structs_on_heap() {
    let src = r#"
        extern char *malloc(long nbytes);
        typedef long cost_t;
        struct node {
            long number;
            struct node *next;
            cost_t potential;
        };
        long main() {
            struct node *head = 0;
            struct node *p;
            long i;
            for (i = 0; i < 10; i = i + 1) {
                p = (struct node*)malloc(sizeof(struct node));
                p->number = i;
                p->potential = i * i;
                p->next = head;
                head = p;
            }
            long s = 0;
            p = head;
            while (p) {
                s = s + p->potential;
                p = p->next;
            }
            return s;
        }
    "#;
    assert_eq!(run(src).0, 285);
}

#[test]
fn chained_pointer_dereferences() {
    // The shape of the paper's critical loop:
    // node->potential = node->basic_arc->cost + node->pred->potential.
    let src = r#"
        extern char *malloc(long nbytes);
        struct arc { long cost; };
        struct node {
            struct node *pred;
            struct arc *basic_arc;
            long potential;
            long orientation;
        };
        long main() {
            struct node *a = (struct node*)malloc(sizeof(struct node));
            struct node *b = (struct node*)malloc(sizeof(struct node));
            struct arc *x = (struct arc*)malloc(sizeof(struct arc));
            a->potential = 100;
            x->cost = 7;
            b->pred = a;
            b->basic_arc = x;
            b->orientation = 1;
            if (b->orientation == 1) {
                b->potential = b->basic_arc->cost + b->pred->potential;
            } else {
                b->potential = b->pred->potential - b->basic_arc->cost;
            }
            return b->potential;
        }
    "#;
    assert_eq!(run(src).0, 107);
}

#[test]
fn global_scalars_and_arrays() {
    let src = r#"
        long counter;
        long table[64];
        long main() {
            long i;
            for (i = 0; i < 64; i = i + 1) { table[i] = i * 3; }
            for (i = 0; i < 64; i = i + 1) { counter = counter + table[i]; }
            return counter;
        }
    "#;
    assert_eq!(run(src).0, 3 * (63 * 64 / 2));
}

#[test]
fn pointer_arithmetic_iteration() {
    let src = r#"
        extern char *malloc(long nbytes);
        struct arc { long cost; long ident; long flow; long pad; };
        long main() {
            struct arc *arcs = (struct arc*)malloc(100 * sizeof(struct arc));
            struct arc *a;
            struct arc *stop = arcs + 100;
            long k = 0;
            for (a = arcs; a < stop; a = a + 1) {
                a->cost = k;
                a->ident = 1;
                k = k + 1;
            }
            long s = 0;
            for (a = arcs; a < stop; a = a + 1) {
                if (a->ident == 1) { s = s + a->cost; }
            }
            return s + (stop - arcs);
        }
    "#;
    assert_eq!(run(src).0, 4950 + 100);
}

#[test]
fn char_pointer_bytes() {
    let src = r#"
        extern char *malloc(long nbytes);
        long main() {
            char *buf = malloc(16);
            long i;
            for (i = 0; i < 16; i = i + 1) { buf[i] = 200 + i; }
            long s = 0;
            for (i = 0; i < 16; i = i + 1) { s = s + buf[i]; }
            return s;
        }
    "#;
    // Bytes store the truncated values 200..215 (all < 256, unsigned).
    assert_eq!(run(src).0, (200..216).sum::<i64>());
}

#[test]
fn print_output() {
    let src = r#"
        void main2() { }
        long main() {
            long i;
            for (i = 1; i <= 3; i = i + 1) { print_long(i * 11); }
            print_char(111);
            print_char(107);
            print_char(10);
            return 0;
        }
    "#;
    let (_, output) = run(src);
    assert_eq!(output, "11\n22\n33\nok\n");
}

#[test]
fn negative_numbers_and_unary() {
    let src = r#"
        long main() {
            long a = -5;
            long b = !0;
            long c = !7;
            return -a + b * 10 + c;
        }
    "#;
    assert_eq!(run(src).0, 15);
}

#[test]
fn large_constants() {
    let src = r#"
        long main() {
            long big = 1000000000;
            long neg = -123456789;
            return big / 1000000 + neg / 1000000;
        }
    "#;
    assert_eq!(run(src).0, 1000 - 123);
}

#[test]
fn address_of_field_and_array_element() {
    let src = r#"
        extern char *malloc(long nbytes);
        struct node { long a; long b; };
        long slots[8];
        long main() {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            long *pb = &n->b;
            *pb = 55;
            long *ps = &slots[3];
            *ps = 11;
            return n->b + slots[3];
        }
    "#;
    assert_eq!(run(src).0, 66);
}

#[test]
fn call_in_expression_spills_correctly() {
    // f(a) + g(b) must preserve f(a)'s value across the second call.
    let src = r#"
        long f(long x) { return x * 2; }
        long g(long x) { return x + 1; }
        long main() {
            return f(10) + g(f(5) + g(1)) * 100;
        }
    "#;
    assert_eq!(run(src).0, 20 + (10 + 2 + 1) * 100);
}

#[test]
fn six_parameters() {
    let src = r#"
        long sum6(long a, long b, long c, long d, long e, long f) {
            return a + 10 * b + 100 * c + 1000 * d + 10000 * e + 100000 * f;
        }
        long main() { return sum6(1, 2, 3, 4, 5, 6); }
    "#;
    assert_eq!(run(src).0, 654321);
}

#[test]
fn many_locals_spill_to_stack() {
    // 20 locals exceed the 14 callee-saved homes.
    let decls: String = (0..20)
        .map(|i| format!("long v{i} = {i};"))
        .collect::<Vec<_>>()
        .join("\n            ");
    let sum: String = (0..20)
        .map(|i| format!("v{i}"))
        .collect::<Vec<_>>()
        .join(" + ");
    let src = format!("long main() {{\n            {decls}\n            return {sum};\n        }}");
    assert_eq!(run(&src).0, (0..20).sum::<i64>());
}

#[test]
fn recursive_quicksort_on_global_array() {
    let src = r#"
        long data[100];
        void qsort_range(long lo, long hi) {
            if (lo >= hi) { return; }
            long pivot = data[hi];
            long i = lo;
            long j;
            for (j = lo; j < hi; j = j + 1) {
                if (data[j] < pivot) {
                    long t = data[i];
                    data[i] = data[j];
                    data[j] = t;
                    i = i + 1;
                }
            }
            long t2 = data[i];
            data[i] = data[hi];
            data[hi] = t2;
            qsort_range(lo, i - 1);
            qsort_range(i + 1, hi);
        }
        long main() {
            long i;
            long seed = 12345;
            for (i = 0; i < 100; i = i + 1) {
                seed = (seed * 1103515245 + 12345) % 2147483648;
                data[i] = seed % 1000;
            }
            qsort_range(0, 99);
            for (i = 1; i < 100; i = i + 1) {
                if (data[i - 1] > data[i]) { return 1; }
            }
            return 0;
        }
    "#;
    assert_eq!(run(src).0, 0);
}

#[test]
fn hwcprof_costs_a_little_but_not_much() {
    // §2.1: "approximately 1.3% greater" runtime with -xhwcprof.
    let src = r#"
        extern char *malloc(long nbytes);
        struct node { long v; struct node *next; };
        long main() {
            struct node *head = 0;
            struct node *p;
            long i;
            for (i = 0; i < 2000; i = i + 1) {
                p = (struct node*)malloc(sizeof(struct node));
                p->v = i;
                p->next = head;
                head = p;
            }
            long s = 0;
            long round;
            for (round = 0; round < 50; round = round + 1) {
                p = head;
                while (p) { s = s + p->v; p = p->next; }
            }
            return s % 1000;
        }
    "#;
    let cycles = |opts: CompileOptions| {
        let program = compile_and_link(&[("t.c", src)], opts).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&program.image);
        m.run(200_000_000, &mut NullHook).unwrap().counts.cycles
    };
    let plain = cycles(CompileOptions::default());
    let prof = cycles(CompileOptions::profiling());
    assert!(prof >= plain, "profiling build should not be faster");
    let overhead = (prof - plain) as f64 / plain as f64;
    // This micro-loop is CPU-bound with a cache-resident working set,
    // so the nop padding costs proportionally more here than on the
    // memory-bound MCF, where the paper (and our E8 bench) see ~1.3%.
    // The bound below just catches pathological padding regressions.
    assert!(
        overhead < 0.35,
        "hwcprof overhead out of range, got {:.1}%",
        overhead * 100.0
    );
}

#[test]
fn too_complex_expression_is_a_clean_error() {
    // Pathologically nested indexing through calls exceeds the
    // 11-register scratch pool; the compiler must reject it with its
    // documented "expression too complex" diagnostic — never panic or
    // miscompile (cf. the era's C compilers, e.g. MSVC C1026).
    let mut expr = "v".to_string();
    for _ in 0..14 {
        expr = format!("(g[f({expr})] + (1 < {expr}))");
    }
    let src = format!(
        "long g[8];\nlong f(long x) {{ if (x < 0) {{ x = 0 - x; }} return x % 8; }}\nlong main() {{ long v = 1; return {expr}; }}"
    );
    let err = compile_and_link(&[("deep.c", &src)], CompileOptions::default()).unwrap_err();
    assert!(err.to_string().contains("expression too complex"), "{err}");
}
