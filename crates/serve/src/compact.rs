//! Tiered compaction: fold a window's sealed raw segments into its
//! packed store and regenerate the summary.
//!
//! Compacting a window is equivalent to running, offline:
//!
//! ```text
//! mp-store merge packed/W.mps [packed/W.mps] raw/W/*.mpes   (sorted)
//! ```
//!
//! and the resulting packed store is byte-identical to that command's
//! output because both go through the same
//! [`memprof_store::merge_experiments`] + [`pack_experiment`] +
//! [`collect_attachments`] path with the same input order: the
//! previous packed tier first, then raw segments in file-name order
//! (session ids embed an arrival sequence number, so the order is
//! deterministic). The tier-2 summary is regenerated from the inputs'
//! event streams with the same `aggregate_refs` kernel `mp-store stat`
//! uses.

use std::path::PathBuf;

use memprof_store::{
    aggregate_refs, collect_attachments, merge_experiments, pack_experiment, ExperimentRef,
    StoreError,
};

use crate::store::StoreDirs;
use crate::summary::write_summary;

/// What one compaction pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// `(window, raw segments folded in)` for each compacted window.
    pub windows: Vec<(String, usize)>,
    /// Windows whose compaction failed, with the rendered error.
    pub errors: Vec<(String, String)>,
}

impl CompactReport {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (window, n) in &self.windows {
            out.push_str(&format!("compacted {window}: {n} raw segments\n"));
        }
        for (window, err) in &self.errors {
            out.push_str(&format!("compact {window} failed: {err}\n"));
        }
        if out.is_empty() {
            out.push_str("nothing to compact\n");
        }
        out
    }
}

/// Compact one window if it has sealed raw segments. Returns the
/// number of segments folded in (0 = nothing to do).
pub fn compact_window(dirs: &StoreDirs, window: &str) -> Result<usize, StoreError> {
    let raws = dirs.raw_segments(window)?;
    if raws.is_empty() {
        return Ok(0);
    }
    let packed = dirs.packed_path(window);
    let mut inputs: Vec<PathBuf> = Vec::new();
    if packed.exists() {
        inputs.push(packed.clone());
    }
    inputs.extend(raws.iter().cloned());
    let refs = inputs
        .iter()
        .map(|p| ExperimentRef::open(p))
        .collect::<Result<Vec<ExperimentRef>, StoreError>>()?;
    let merged = merge_experiments(&refs)?;
    let attachments = collect_attachments(&refs);
    let bytes = pack_experiment(&merged, &attachments);

    // Write-then-rename so a crash mid-compaction never clobbers the
    // previous packed tier; raw segments are only deleted once the
    // new store and summary are durable.
    let tmp = packed.with_extension("mps.tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| StoreError::Io(e).at(&tmp))?;
    std::fs::rename(&tmp, &packed).map_err(|e| StoreError::Io(e).at(&packed))?;

    let agg = aggregate_refs(&[ExperimentRef::open(&packed)?], 1)?;
    write_summary(&dirs.summary_path(window), &agg)?;

    for raw in &raws {
        std::fs::remove_file(raw).map_err(|e| StoreError::Io(e).at(raw))?;
    }
    // The per-window raw dir stays (possibly empty); new sessions for
    // the window keep landing there.
    Ok(raws.len())
}

/// Compact every window that has sealed raw segments. One window's
/// failure (e.g. an incompatible collection recipe) doesn't block the
/// others.
pub fn compact_all(dirs: &StoreDirs) -> Result<CompactReport, StoreError> {
    let mut report = CompactReport::default();
    for window in dirs.windows()? {
        match compact_window(dirs, &window) {
            Ok(0) => {}
            Ok(n) => report.windows.push((window, n)),
            Err(e) => report.errors.push((window, e.to_string())),
        }
    }
    Ok(report)
}
