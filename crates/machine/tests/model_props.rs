//! Property tests for the machine substrate: the set-associative
//! cache against a naive reference model, TLB reach invariants, and
//! sparse-memory read/write laws.

use proptest::prelude::*;
use simsparc_machine::{CacheConfig, CacheOutcome, Memory, SetAssocCache, Tlb, TlbConfig};

/// A straightforward reference model: per set, a vector of lines in
/// LRU order (front = MRU).
struct RefCache {
    line_shift: u32,
    sets: u64,
    ways: usize,
    lru: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(config: CacheConfig) -> RefCache {
        let sets = config.sets();
        RefCache {
            line_shift: config.line_bytes.trailing_zeros(),
            sets,
            ways: config.ways as usize,
            lru: vec![Vec::new(); sets as usize],
        }
    }

    fn access(&mut self, addr: u64) -> CacheOutcome {
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let v = &mut self.lru[set];
        if let Some(pos) = v.iter().position(|&l| l == line) {
            v.remove(pos);
            v.insert(0, line);
            CacheOutcome::Hit
        } else {
            v.insert(0, line);
            v.truncate(self.ways);
            CacheOutcome::Miss
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production cache and the reference model agree on every
    /// access of a random trace, for random (small) geometries.
    #[test]
    fn cache_matches_reference_model(
        ways in 1u32..=4,
        sets_log in 1u32..=4,
        line_log in 4u32..=7,
        trace in prop::collection::vec(0u64..(1 << 16), 1..500),
    ) {
        let line_bytes = 1u64 << line_log;
        let bytes = line_bytes * (1 << sets_log) * ways as u64;
        let config = CacheConfig { bytes, ways, line_bytes };
        let mut real = SetAssocCache::new(config);
        let mut reference = RefCache::new(config);
        for (i, &addr) in trace.iter().enumerate() {
            let a = real.access(addr);
            let b = reference.access(addr);
            prop_assert_eq!(a, b, "divergence at access {} (addr {:#x})", i, addr);
        }
    }

    /// Hits + misses equals the number of accesses, and re-running the
    /// same trace on a fresh cache is deterministic.
    #[test]
    fn cache_stats_are_consistent(
        trace in prop::collection::vec(0u64..(1 << 20), 1..300),
    ) {
        let config = CacheConfig { bytes: 4096, ways: 2, line_bytes: 64 };
        let mut c1 = SetAssocCache::new(config);
        let r1: Vec<CacheOutcome> = trace.iter().map(|&a| c1.access(a)).collect();
        let (h, m) = c1.stats();
        prop_assert_eq!(h + m, trace.len() as u64);
        let mut c2 = SetAssocCache::new(config);
        let r2: Vec<CacheOutcome> = trace.iter().map(|&a| c2.access(a)).collect();
        prop_assert_eq!(r1, r2);
    }

    /// A second pass over any working set that fits within one way's
    /// worth of distinct lines per set never misses.
    #[test]
    fn cache_second_pass_hits_when_fits(
        seed_lines in prop::collection::btree_set(0u64..128, 1..16),
    ) {
        // 16 sets x 4 ways of 32-byte lines: any 16 distinct lines that
        // map to distinct sets fit; to be safe, use <= 4 lines per set.
        let config = CacheConfig { bytes: 2048, ways: 4, line_bytes: 32 };
        let sets = config.sets();
        let mut per_set = std::collections::HashMap::new();
        let lines: Vec<u64> = seed_lines
            .into_iter()
            .filter(|l| {
                let c = per_set.entry(l % sets).or_insert(0u32);
                *c += 1;
                *c <= 4
            })
            .collect();
        let mut c = SetAssocCache::new(config);
        for &l in &lines {
            c.access(l * 32);
        }
        for &l in &lines {
            prop_assert_eq!(c.access(l * 32), CacheOutcome::Hit);
        }
    }

    /// TLB: accesses within one page hit after the first touch,
    /// regardless of page size; the large-page tag covers the whole
    /// large page.
    #[test]
    fn tlb_page_granularity(base in 0u64..(1 << 28), offs in prop::collection::vec(0u64..8192, 1..50)) {
        let mut t = Tlb::new(TlbConfig { entries: 8, ways: 2 });
        let page = base & !8191;
        t.access(page, 8192);
        for &o in &offs {
            prop_assert!(t.access(page + o, 8192), "same 8K page must hit");
        }
        let mut t = Tlb::new(TlbConfig { entries: 8, ways: 2 });
        let lpage = base & !(512 * 1024 - 1);
        t.access(lpage, 512 * 1024);
        for &o in &offs {
            prop_assert!(t.access(lpage + o * 63, 512 * 1024), "same 512K page must hit");
        }
    }

    /// Memory: the last write wins, all widths, and disjoint writes do
    /// not interfere.
    #[test]
    fn memory_last_write_wins(
        writes in prop::collection::vec((0u64..1024u64, prop::sample::select(&[1u64,2,4,8][..]), any::<u64>()), 1..100),
    ) {
        let mut mem = Memory::new();
        let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for (slot, len, val) in writes {
            let addr = 0x2000_0000 + slot * 8; // 8-aligned, any width legal
            prop_assert!(mem.write(addr, len, val));
            for (i, b) in val.to_le_bytes()[..len as usize].iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        for (&addr, &b) in &model {
            prop_assert_eq!(mem.read(addr, 1), Some(b as u64));
        }
    }
}
