//! Streaming access to packed store files.
//!
//! [`StoreFile`] parses the (small) header and segment index eagerly
//! and leaves the event payload encoded. Per-counter iterators decode
//! events on the fly, so aggregating one counter of a large store
//! never materializes the other counters — the analyzer-facing
//! [`StoreFile::to_experiment`] is the only path that decodes
//! everything.

use std::path::Path;

use memprof_core::batch::NO_ADDR;
use memprof_core::{ClockEvent, CounterRequest, EventBatch, Experiment, HwcEvent, RunInfo};

use crate::format::{
    get_clock_event, get_hwc_event, get_hwc_plain, parse_store, skip_stack, ParsedStore, Segment,
    SEG_CLOCK, SEG_HWC,
};
use crate::pread::{read_file_pooled, PooledBuf};
use crate::varint::Cursor;
use crate::StoreError;

/// An open packed store: header in memory, events decoded lazily.
/// The byte image lives in a pooled buffer, so repeated open/decode
/// cycles (windowed queries, compaction) recycle one allocation per
/// thread instead of churning a fresh `Vec` per file.
pub struct StoreFile {
    bytes: PooledBuf,
    parsed: ParsedStore,
}

impl StoreFile {
    /// Parse a packed store image, validating magic, version,
    /// checksum, and segment ranges.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<StoreFile, StoreError> {
        StoreFile::from_buf(PooledBuf::from_vec(bytes))
    }

    pub(crate) fn from_buf(bytes: PooledBuf) -> Result<StoreFile, StoreError> {
        let parsed = parse_store(&bytes)?;
        Ok(StoreFile { bytes, parsed })
    }

    /// Open via positioned reads into a pooled buffer — no per-open
    /// allocation once the calling thread's pool is warm.
    pub fn open(path: &Path) -> Result<StoreFile, StoreError> {
        use crate::PathContext as _;
        read_file_pooled(path)
            .map_err(StoreError::Io)
            .and_then(StoreFile::from_buf)
            .path_context(path)
    }

    pub fn counters(&self) -> &[CounterRequest] {
        &self.parsed.counters
    }

    pub fn clock_period(&self) -> Option<u64> {
        self.parsed.clock_period
    }

    pub fn run(&self) -> &RunInfo {
        &self.parsed.run
    }

    pub fn log(&self) -> &[String] {
        &self.parsed.log
    }

    /// Auxiliary text files (`syms.txt`, `image.txt`) packed with the
    /// experiment.
    pub fn attachments(&self) -> &[(String, String)] {
        &self.parsed.attachments
    }

    pub fn attachment(&self, name: &str) -> Option<&str> {
        self.parsed
            .attachments
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_str())
    }

    fn segment(&self, kind: u8, counter: usize) -> Option<&Segment> {
        self.parsed
            .segments
            .iter()
            .find(|s| s.kind == kind && (kind == SEG_CLOCK || s.counter == counter))
    }

    fn segment_bytes(&self, seg: &Segment) -> &[u8] {
        let start = self.parsed.payload_start + seg.offset;
        &self.bytes[start..start + seg.len]
    }

    /// Recorded event count for one counter, straight from the index
    /// (no decoding).
    pub fn hwc_count(&self, counter: usize) -> usize {
        self.segment(SEG_HWC, counter).map_or(0, |s| s.count)
    }

    pub fn clock_count(&self) -> usize {
        self.segment(SEG_CLOCK, 0).map_or(0, |s| s.count)
    }

    /// Stream one counter's events in collection order. Each item is
    /// `(global_index, event)` where `global_index` is the event's
    /// position in the original interleaved sequence.
    pub fn hwc_events(&self, counter: usize) -> HwcIter<'_> {
        match self.segment(SEG_HWC, counter) {
            Some(seg) => HwcIter {
                cur: Cursor::new(self.segment_bytes(seg)),
                counter,
                remaining: seg.count,
                prev_global: 0,
            },
            None => HwcIter {
                cur: Cursor::new(&[]),
                counter,
                remaining: 0,
                prev_global: 0,
            },
        }
    }

    /// Stream the clock-profiling ticks in collection order.
    pub fn clock_events(&self) -> ClockIter<'_> {
        match self.segment(SEG_CLOCK, 0) {
            Some(seg) => ClockIter {
                cur: Cursor::new(self.segment_bytes(seg)),
                remaining: seg.count,
            },
            None => ClockIter {
                cur: Cursor::new(&[]),
                remaining: 0,
            },
        }
    }

    /// Stream the store's events into a plain columnar batch without
    /// materializing an [`Experiment`]: the packed-store counterpart
    /// of [`memprof_core::EventSource::fill_batch`], with the same
    /// charge-PC rule (candidate trigger for backtracked counters,
    /// delivered PC otherwise).
    ///
    /// This is the bulk decode path: the batch is pre-sized from the
    /// segment-index counts, each segment's varint stream is decoded
    /// straight into the batch columns (callstacks and truth columns
    /// skipped, never allocated), and the charge-PC rule is applied
    /// vectorized over each backtracked segment's row range instead
    /// of being branched per event.
    pub fn fill_batch(
        &self,
        batch: &mut EventBatch,
        hwc_col: &[usize],
        clock_col: Option<usize>,
    ) -> Result<(), StoreError> {
        let clock = if clock_col.is_some() {
            self.clock_count()
        } else {
            0
        };
        batch.reserve_plain(self.hwc_total() + clock);
        if let Some(col) = clock_col {
            if let Some(seg) = self.segment(SEG_CLOCK, 0) {
                let mut cur = Cursor::new(self.segment_bytes(seg));
                let (cols, pcs, delivered, _candidates, _eas) = batch.grow_plain(seg.count);
                for i in 0..seg.count {
                    let pc = cur.get_u64()?;
                    skip_stack(&mut cur)?;
                    cols[i] = col as u32;
                    pcs[i] = pc;
                    delivered[i] = pc;
                }
                if !cur.is_empty() {
                    return Err(StoreError::Corrupt("trailing bytes in segment"));
                }
            }
        }
        for (ci, req) in self.counters().iter().enumerate() {
            let Some(seg) = self.segment(SEG_HWC, ci) else {
                continue;
            };
            let col = hwc_col[ci];
            let mut cur = Cursor::new(self.segment_bytes(seg));
            let start = batch.len();
            {
                let (cols, pcs, delivered, candidates, eas) = batch.grow_plain(seg.count);
                for i in 0..seg.count {
                    let (delivered_pc, candidate_pc, ea) = get_hwc_plain(&mut cur)?;
                    cols[i] = col as u32;
                    pcs[i] = delivered_pc;
                    delivered[i] = delivered_pc;
                    candidates[i] = candidate_pc.unwrap_or(NO_ADDR);
                    eas[i] = ea.unwrap_or(NO_ADDR);
                }
            }
            if !cur.is_empty() {
                return Err(StoreError::Corrupt("trailing bytes in segment"));
            }
            if req.backtrack {
                batch.charge_candidates(start..batch.len());
            }
        }
        Ok(())
    }

    /// [`StoreFile::fill_batch`] in the pc projection: the same bulk
    /// varint decode, but the charge-PC rule is applied inline as each
    /// backtracked segment is decoded and the columns a per-PC
    /// histogram never reads are not written at all.
    pub fn fill_pc_batch(
        &self,
        batch: &mut EventBatch,
        hwc_col: &[usize],
        clock_col: Option<usize>,
    ) -> Result<(), StoreError> {
        if let Some(col) = clock_col {
            if let Some(seg) = self.segment(SEG_CLOCK, 0) {
                let mut cur = Cursor::new(self.segment_bytes(seg));
                let (cols, pcs) = batch.grow_pc_rows(seg.count);
                for i in 0..seg.count {
                    let pc = cur.get_u64()?;
                    skip_stack(&mut cur)?;
                    cols[i] = col as u32;
                    pcs[i] = pc;
                }
                if !cur.is_empty() {
                    return Err(StoreError::Corrupt("trailing bytes in segment"));
                }
            }
        }
        for (ci, req) in self.counters().iter().enumerate() {
            let Some(seg) = self.segment(SEG_HWC, ci) else {
                continue;
            };
            let col = hwc_col[ci];
            let mut cur = Cursor::new(self.segment_bytes(seg));
            let (cols, pcs) = batch.grow_pc_rows(seg.count);
            for i in 0..seg.count {
                let (delivered_pc, candidate_pc, _ea) = get_hwc_plain(&mut cur)?;
                cols[i] = col as u32;
                pcs[i] = if req.backtrack {
                    candidate_pc.unwrap_or(delivered_pc)
                } else {
                    delivered_pc
                };
            }
            if !cur.is_empty() {
                return Err(StoreError::Corrupt("trailing bytes in segment"));
            }
        }
        Ok(())
    }

    /// Total recorded overflow events across all counters, straight
    /// from the segment index (no decoding).
    pub fn hwc_total(&self) -> usize {
        (0..self.parsed.counters.len())
            .map(|ci| self.hwc_count(ci))
            .sum()
    }

    /// Visit every hwc event in global-index order without collecting
    /// and sorting them first: a linear pick-min merge over the
    /// per-counter streams (each segment is already ordered by global
    /// index). Contiguity is verified as the merge runs — a gap or
    /// duplicate surfaces as [`StoreError::CorruptIndex`] naming the
    /// first offending index.
    pub(crate) fn for_each_hwc_ordered(
        &self,
        mut f: impl FnMut(HwcEvent),
    ) -> Result<(), StoreError> {
        let mut iters: Vec<HwcIter<'_>> = (0..self.parsed.counters.len())
            .map(|ci| self.hwc_events(ci))
            .collect();
        let mut heads: Vec<Option<(u64, HwcEvent)>> = Vec::with_capacity(iters.len());
        for it in iters.iter_mut() {
            heads.push(it.next().transpose()?);
        }
        let mut next = 0u64;
        loop {
            let Some(ci) = heads
                .iter()
                .enumerate()
                .filter_map(|(ci, head)| head.as_ref().map(|(gi, _)| (ci, *gi)))
                .min_by_key(|&(_, gi)| gi)
                .map(|(ci, _)| ci)
            else {
                return Ok(());
            };
            let (gi, ev) = heads[ci].take().unwrap();
            if gi != next {
                return Err(StoreError::CorruptIndex {
                    why: "event indices are not contiguous",
                    index: gi,
                });
            }
            next += 1;
            f(ev);
            heads[ci] = iters[ci].next().transpose()?;
        }
    }

    /// Decode the full store back into an [`Experiment`], merging the
    /// per-counter streams by global index to restore the original
    /// interleaved event order. The event vector is pre-sized from the
    /// segment index and filled by the streaming merge — the events
    /// are never collected out of order and re-sorted.
    pub fn to_experiment(&self) -> Result<Experiment, StoreError> {
        let mut hwc_events: Vec<HwcEvent> = Vec::with_capacity(self.hwc_total());
        self.for_each_hwc_ordered(|ev| hwc_events.push(ev))?;
        let clock_events = self
            .clock_events()
            .collect::<Result<Vec<ClockEvent>, StoreError>>()?;
        Ok(Experiment {
            counters: self.parsed.counters.clone(),
            clock_period: self.parsed.clock_period,
            hwc_events,
            clock_events,
            run: self.parsed.run.clone(),
            log: self.parsed.log.clone(),
        })
    }
}

/// Streaming decoder for one counter's events.
pub struct HwcIter<'a> {
    cur: Cursor<'a>,
    counter: usize,
    remaining: usize,
    prev_global: u64,
}

impl Iterator for HwcIter<'_> {
    type Item = Result<(u64, HwcEvent), StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            // A well-formed segment is fully consumed by `count` events.
            if !self.cur.is_empty() {
                self.cur = Cursor::new(&[]);
                return Some(Err(StoreError::Corrupt("trailing bytes in segment")));
            }
            return None;
        }
        self.remaining -= 1;
        match get_hwc_event(&mut self.cur, self.counter) {
            Ok((gap, ev)) => {
                let global = self.prev_global + gap;
                self.prev_global = global;
                Some(Ok((global, ev)))
            }
            Err(e) => {
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

/// Streaming decoder for the clock segment.
pub struct ClockIter<'a> {
    cur: Cursor<'a>,
    remaining: usize,
}

impl Iterator for ClockIter<'_> {
    type Item = Result<ClockEvent, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            if !self.cur.is_empty() {
                self.cur = Cursor::new(&[]);
                return Some(Err(StoreError::Corrupt("trailing bytes in segment")));
            }
            return None;
        }
        self.remaining -= 1;
        match get_clock_event(&mut self.cur) {
            Ok(ev) => Some(Ok(ev)),
            Err(e) => {
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{fnv1a64, pack_experiment, PREAMBLE_LEN};
    use crate::tests::sample_experiment;

    #[test]
    fn contiguity_error_names_first_offending_index() {
        let exp = sample_experiment();
        let mut bytes = pack_experiment(&exp, &[]);
        // Bump the first gap varint of counter 0's segment (a
        // one-byte `0`, so counter 0's events claim global indices 5
        // and 7): the streaming merge then meets counter 1's event at
        // index 1 while expecting index 0, and must name it.
        let store = StoreFile::from_bytes(bytes.clone()).unwrap();
        let seg = store.segment(SEG_HWC, 0).unwrap();
        let gap_at = store.parsed.payload_start + seg.offset;
        assert_eq!(bytes[gap_at], 0);
        bytes[gap_at] = 5;
        let checksum = fnv1a64(&bytes[PREAMBLE_LEN..]);
        bytes[5..13].copy_from_slice(&checksum.to_le_bytes());
        let corrupt = StoreFile::from_bytes(bytes).unwrap();
        match corrupt.to_experiment() {
            Err(StoreError::CorruptIndex { why, index }) => {
                assert_eq!(why, "event indices are not contiguous");
                assert_eq!(index, 1);
            }
            other => panic!("expected CorruptIndex, got {:?}", other.map(|_| ())),
        }
    }
}
