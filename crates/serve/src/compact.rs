//! Tiered compaction: fold a window's sealed raw segments into its
//! packed store and regenerate the summary.
//!
//! Compacting a window is equivalent to running, offline:
//!
//! ```text
//! mp-store merge packed/W.mps [packed/W.mps] raw/W/*.mpes   (sorted)
//! ```
//!
//! and the resulting packed store is byte-identical to that command's
//! output because both go through the same
//! [`memprof_store::merge_experiments`] + [`pack_experiment`] +
//! [`collect_attachments`] path with the same input order: the
//! previous packed tier first, then raw segments in file-name order
//! (session ids embed an arrival sequence number, so the order is
//! deterministic). The tier-2 summary is regenerated with the same
//! aggregation kernel `mp-store stat` uses.
//!
//! ## Incremental compaction
//!
//! A long-lived daemon compacts the same windows over and over, and
//! each pass used to re-read and re-decode the whole packed store just
//! to fold in a handful of fresh segments — compaction cost grew with
//! the *window*, not with the new data. The daemon now keeps a
//! [`CompactCache`]: the merged [`Experiment`] (and the attachments it
//! was packed with) from each window's previous pass, fingerprinted by
//! the packed store's FNV-1a hash. When the on-disk store still
//! matches the fingerprint — i.e. nobody replaced it behind the
//! daemon's back — the next pass seeds the merge with the cached
//! experiment ([`memprof_store::merge_experiments_seeded`]) and only
//! decodes the fresh segments. Packing is lossless (`load(pack(x)) ==
//! x`, pinned by the store tests), so the seeded merge's inputs are
//! exactly what re-reading the store would have produced and the
//! output bytes are identical either way. A hash mismatch, a missing
//! cache entry (first pass, restarted daemon), or any failed pass
//! falls back to the re-read path.
//!
//! ## Crash safety
//!
//! A pass publishes in an order that keeps every crash point
//! recoverable without losing or double-counting a sample:
//!
//! 1. delete stale leftovers (segments a *previous* pass already
//!    folded in but crashed before deleting — identified by a
//!    hash-valid [`Manifest`](crate::store::Manifest));
//! 2. merge `[old packed] + fresh raws` in memory (seeded from the
//!    cache when the fingerprint matches);
//! 3. durably write the manifest naming the fresh raws, keyed by the
//!    *new* store's hash — inert until that store lands;
//! 4. durably rename the new packed store into place — this is the
//!    commit point: the manifest hash now matches, so the fresh raws
//!    are stale from here on;
//! 5. regenerate the summary;
//! 6. delete the consumed raws.
//!
//! A crash before step 4 leaves the old packed store authoritative
//! and every raw segment fresh (the manifest hash does not match);
//! the next pass simply redoes the merge. A crash after step 4 leaves
//! the consumed raws on disk but hash-flagged as stale, so queries
//! skip them and the next pass deletes them instead of re-merging.
//! All tier writes go through [`write_durable`] (fsync before rename,
//! directory fsync after), so "landed" means on disk, not in page
//! cache — the raw segments deleted in step 6 are never the only copy
//! of their events. The cache only ever *adds* a fast path: it is
//! updated after the pass fully succeeds and revalidated against the
//! on-disk bytes before use. It lives behind its own mutex, held only
//! for entry take/put — never across a merge — so windows compact
//! concurrently; what serializes two passes over the *same* window is
//! that window's exclusive lock in the
//! [`WindowRegistry`](crate::registry::WindowRegistry), which
//! [`compact_all_registered`] (the daemon's entry point) takes per
//! window.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

use memprof_core::Experiment;
use memprof_store::pread::read_file_pooled;
use memprof_store::{
    aggregate, collect_attachments, fnv1a64, merge_experiments_seeded, pack_experiment,
    ExperimentRef, StoreError,
};

use crate::registry::WindowRegistry;
use crate::store::{render_manifest, write_durable, Manifest, StoreDirs};
use crate::summary::write_summary;

/// One window's previous compaction result, reusable as the seed of
/// the next pass while the on-disk packed store still hashes to
/// `packed_hash`.
struct CachedWindow {
    packed_hash: u64,
    merged: Experiment,
    attachments: Vec<(String, String)>,
    /// Value of the cache clock when this entry was last written —
    /// the LRU eviction key.
    last_used: u64,
}

/// Per-window merge results carried between compaction passes (see
/// the module docs). Owned by the daemon and protected by its tier
/// lock; an empty cache is always correct — every lookup revalidates
/// against the bytes on disk.
///
/// Each cached window pins a fully decoded [`Experiment`] in memory,
/// so the cache holds at most [`CompactCache::DEFAULT_CACHED_WINDOWS`]
/// entries unless [`CompactCache::with_cap`] says otherwise; beyond
/// the cap the least-recently-compacted window is dropped and its next
/// pass simply re-reads the packed store from disk (the slow path
/// every entry starts from anyway).
pub struct CompactCache {
    windows: HashMap<String, CachedWindow>,
    /// Monotonic compaction counter; entries stamp it on insert.
    clock: u64,
    cap: usize,
}

impl Default for CompactCache {
    fn default() -> Self {
        Self::with_cap(Self::DEFAULT_CACHED_WINDOWS)
    }
}

impl CompactCache {
    /// Deliberately small: a daemon usually compacts a handful of hot
    /// (recent) windows over and over while old windows go quiet, and
    /// one entry can hold a large merged experiment.
    pub const DEFAULT_CACHED_WINDOWS: usize = 4;

    /// A cache that keeps at most `cap` windows; `0` disables seeding
    /// entirely (every pass takes the re-read path).
    pub fn with_cap(cap: usize) -> Self {
        CompactCache {
            windows: HashMap::new(),
            clock: 0,
            cap,
        }
    }

    /// Windows currently cached (for tests and introspection).
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Record `window`'s pass result, evicting the least recently
    /// compacted window if that pushes the cache over its cap.
    fn insert(&mut self, window: &str, entry: CachedWindow) {
        if self.cap == 0 {
            return;
        }
        self.windows.insert(window.to_string(), entry);
        while self.windows.len() > self.cap {
            let oldest = self
                .windows
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(w, _)| w.clone())
                .expect("cache over cap is non-empty");
            self.windows.remove(&oldest);
        }
    }
}

/// What one compaction pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// `(window, raw segments folded in)` for each compacted window.
    pub windows: Vec<(String, usize)>,
    /// Windows whose compaction failed, with the rendered error.
    pub errors: Vec<(String, String)>,
}

impl CompactReport {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (window, n) in &self.windows {
            out.push_str(&format!("compacted {window}: {n} raw segments\n"));
        }
        for (window, err) in &self.errors {
            out.push_str(&format!("compact {window} failed: {err}\n"));
        }
        if out.is_empty() {
            out.push_str("nothing to compact\n");
        }
        out
    }
}

/// Regenerate a window's tier-2 summary from its packed store on
/// disk. The main compaction path summarizes the in-memory merge
/// instead; this serves the recovery paths that have no merge in
/// hand.
fn refresh_summary(dirs: &StoreDirs, window: &str) -> Result<(), StoreError> {
    let agg = memprof_store::aggregate_refs(&[ExperimentRef::open(&dirs.packed_path(window))?], 0)?;
    write_summary(&dirs.summary_path(window), &agg)
}

/// Compact one window if it has sealed raw segments. Returns the
/// number of segments folded in (0 = nothing to do, though stale
/// leftovers from an interrupted earlier pass may still be cleaned
/// up). See the module docs for the crash protocol and the cache's
/// role. Callers must hold the window's exclusive lock (or otherwise
/// guarantee one pass per window at a time) — the daemon path is
/// [`compact_all_registered`] / [`compact_window_registered`].
pub fn compact_window(
    dirs: &StoreDirs,
    window: &str,
    cache: &Mutex<CompactCache>,
) -> Result<usize, StoreError> {
    let tier = dirs.live_raw_segments(window)?;
    let packed = dirs.packed_path(window);

    // Recovery: a hash-valid manifest says these segments are already
    // in the packed store, so deleting them is the whole job. Failing
    // the pass on a deletion error matters — proceeding would publish
    // a new manifest that no longer names the survivor, turning it
    // back into a fresh (double-counted) segment.
    for raw in &tier.stale {
        std::fs::remove_file(raw).map_err(|e| StoreError::Io(e).at(raw))?;
    }
    if tier.fresh.is_empty() {
        if !tier.stale.is_empty() || (packed.exists() && !dirs.summary_path(window).exists()) {
            refresh_summary(dirs, window)?;
        }
        return Ok(0);
    }

    // Seed from the cache when the on-disk store is still the one the
    // cached experiment was packed into; otherwise (first pass,
    // restart, or an externally replaced store) fall back to reading
    // it like any other input. A pass that fails below leaves the
    // entry removed, so the next attempt re-reads from disk. The
    // entry is taken out under a brief lock and the hash validated
    // outside it — the disk read must not stall other windows' passes.
    let cached =
        cache.lock().unwrap().windows.remove(window).filter(|c| {
            read_file_pooled(&packed).is_ok_and(|bytes| fnv1a64(&bytes) == c.packed_hash)
        });
    let (seeds, seed_attachments) = match cached {
        Some(c) => (vec![c.merged], Some(c.attachments)),
        None => (Vec::new(), None),
    };
    let mut inputs: Vec<PathBuf> = Vec::new();
    if seeds.is_empty() && packed.exists() {
        inputs.push(packed.clone());
    }
    inputs.extend(tier.fresh.iter().cloned());
    let refs = inputs
        .iter()
        .map(|p| ExperimentRef::open(p))
        .collect::<Result<Vec<ExperimentRef>, StoreError>>()?;
    let merged = merge_experiments_seeded(seeds, &refs, 0)?;
    // Attachment rule: first input with any attachment wins. The
    // cached attachments are exactly what the packed store carries, so
    // using them (when non-empty) equals collecting over
    // `[packed] + fresh`.
    let attachments = match seed_attachments {
        Some(atts) if !atts.is_empty() => atts,
        _ => collect_attachments(&refs),
    };
    let bytes = pack_experiment(&merged, &attachments);

    // Manifest first (inert until the store it hashes lands), then
    // the store itself — the commit point.
    let manifest = Manifest {
        packed_hash: fnv1a64(&bytes),
        consumed: tier
            .fresh
            .iter()
            .filter_map(|p| p.file_name())
            .map(|n| n.to_string_lossy().to_string())
            .collect(),
    };
    write_durable(
        &dirs.manifest_path(window),
        render_manifest(&manifest).as_bytes(),
    )?;
    write_durable(&packed, &bytes)?;

    // The summary is the aggregate of the store just written; the
    // merge is already in memory, so aggregate it directly instead of
    // re-reading the file.
    let agg = aggregate(&[&merged], 0)?;
    write_summary(&dirs.summary_path(window), &agg)?;

    for raw in &tier.fresh {
        std::fs::remove_file(raw).map_err(|e| StoreError::Io(e).at(raw))?;
    }
    {
        let mut cache = cache.lock().unwrap();
        cache.clock += 1;
        let last_used = cache.clock;
        cache.insert(
            window,
            CachedWindow {
                packed_hash: manifest.packed_hash,
                merged,
                attachments,
                last_used,
            },
        );
    }
    // The per-window raw dir stays (possibly empty); new sessions for
    // the window keep landing there.
    Ok(tier.fresh.len())
}

/// Compact one window under its exclusive registry lock, bumping the
/// window's tier generation if the pass changed anything — the form
/// every daemon-side caller (background loop, `compact` query,
/// retention) uses.
pub fn compact_window_registered(
    dirs: &StoreDirs,
    registry: &WindowRegistry,
    window: &str,
    cache: &Mutex<CompactCache>,
) -> Result<usize, StoreError> {
    let state = registry.state(window);
    let folded = {
        let _exclusive = state.lock_exclusive();
        compact_window(dirs, window, cache)?
    };
    if folded > 0 {
        state.bump_generation();
    }
    Ok(folded)
}

/// Compact every window that has sealed raw segments, taking each
/// window's exclusive lock only for its own pass — queries and seals
/// on other windows proceed throughout. One window's failure (e.g. an
/// incompatible collection recipe) doesn't block the others.
pub fn compact_all_registered(
    dirs: &StoreDirs,
    registry: &WindowRegistry,
    cache: &Mutex<CompactCache>,
) -> Result<CompactReport, StoreError> {
    let mut report = CompactReport::default();
    for window in dirs.windows()? {
        match compact_window_registered(dirs, registry, &window, cache) {
            Ok(0) => {}
            Ok(n) => report.windows.push((window, n)),
            Err(e) => report.errors.push((window, e.to_string())),
        }
    }
    Ok(report)
}

/// [`compact_all_registered`] without a registry, for embedders and
/// tests that already serialize passes themselves.
pub fn compact_all(
    dirs: &StoreDirs,
    cache: &Mutex<CompactCache>,
) -> Result<CompactReport, StoreError> {
    let mut report = CompactReport::default();
    for window in dirs.windows()? {
        match compact_window(dirs, &window, cache) {
            Ok(0) => {}
            Ok(n) => report.windows.push((window, n)),
            Err(e) => report.errors.push((window, e.to_string())),
        }
    }
    Ok(report)
}
