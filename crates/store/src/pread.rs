//! Positioned file reads into pooled, reusable buffers.
//!
//! Every consumer of "a packed file" used to call `std::fs::read`,
//! which allocates a fresh `Vec` per open — in re-open-heavy paths
//! (windowed queries, compaction sweeps, per-iteration bench decode)
//! that allocation churn is pure overhead, and a daemon thread
//! validating a large session image doubles its peak. This module
//! replaces those reads with `pread(2)`-style positioned reads
//! ([`ReadAt`], implemented by [`std::fs::File`] via
//! `std::os::unix::fs::FileExt`) into buffers drawn from a
//! thread-local pool ([`PooledBuf`]): N threads can each decode their
//! own file concurrently with no shared file cursor and no
//! per-open allocation once the pool is warm.
//!
//! `read_at` is allowed to return a *partial* fill at any moment (and
//! `EINTR` on top); [`read_exact_at`] loops until the buffer is full,
//! so callers never see a short read — a file that genuinely ends
//! early surfaces as `UnexpectedEof`, which the format layer reports
//! as a truncated store.

use std::cell::RefCell;
use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A positioned-read source: fill `buf` from absolute `offset`,
/// returning how many bytes were read (`0` means end of file).
/// Partial fills are legal anywhere — the contract is `read_at(2)`'s,
/// not `read_exact`'s. Test doubles implement this to inject short
/// reads and interrupts.
pub trait ReadAt {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize>;
}

impl ReadAt for File {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        std::os::unix::fs::FileExt::read_at(self, buf, offset)
    }
}

/// Fill all of `buf` from `offset`, looping over partial fills and
/// retrying `Interrupted`. Errors with `UnexpectedEof` if the source
/// ends first.
pub fn read_exact_at<R: ReadAt + ?Sized>(
    src: &R,
    mut buf: &mut [u8],
    mut offset: u64,
) -> io::Result<()> {
    while !buf.is_empty() {
        match src.read_at(buf, offset) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "file ended mid-read",
                ))
            }
            Ok(n) => {
                let rest = std::mem::take(&mut buf);
                buf = &mut rest[n..];
                offset += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// How many idle buffers one thread keeps warm.
const POOL_SLOTS: usize = 4;
/// Buffers above this capacity are freed rather than pooled, so one
/// giant file can't pin its footprint for the thread's lifetime.
const POOL_MAX_CAPACITY: usize = 1 << 26;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

fn take_buffer(want: usize) -> Vec<u8> {
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        // Prefer the smallest pooled buffer that already fits.
        if let Some(i) = pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= want)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
        {
            return pool.swap_remove(i);
        }
        pool.pop().unwrap_or_default()
    })
}

fn return_buffer(mut buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > POOL_MAX_CAPACITY {
        return;
    }
    buf.clear();
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_SLOTS {
            pool.push(buf);
        }
    });
}

/// An owned byte image drawn from the thread-local buffer pool; the
/// backing allocation returns to the pool on drop. Dereferences to
/// `[u8]`, so parsers consume it like any other byte slice.
pub struct PooledBuf {
    buf: Option<Vec<u8>>,
}

impl PooledBuf {
    /// Adopt an already-materialized image (the `from_bytes`
    /// entry points). Its allocation joins the pool when dropped.
    pub fn from_vec(bytes: Vec<u8>) -> PooledBuf {
        PooledBuf { buf: Some(bytes) }
    }

    fn as_slice(&self) -> &[u8] {
        self.buf.as_deref().unwrap_or(&[])
    }
}

impl Deref for PooledBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            return_buffer(buf);
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} bytes)", self.as_slice().len())
    }
}

/// Read a whole file through positioned reads into a pooled buffer:
/// the drop-in replacement for `std::fs::read` on every packed-file
/// open path.
pub fn read_file_pooled(path: &Path) -> io::Result<PooledBuf> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    let len = usize::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
    let mut buf = take_buffer(len);
    buf.resize(len, 0);
    read_exact_at(&file, &mut buf, 0)?;
    Ok(PooledBuf { buf: Some(buf) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A positioned source that serves at most `chunk` bytes per call
    /// and injects one `Interrupted` error partway through — the
    /// hostile end of the `read_at` contract.
    struct ShortReader {
        data: Vec<u8>,
        chunk: usize,
        calls: AtomicUsize,
        interrupt_on: usize,
    }

    impl ReadAt for ShortReader {
        fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if call == self.interrupt_on {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            let offset = offset as usize;
            if offset >= self.data.len() {
                return Ok(0);
            }
            let n = self.chunk.min(buf.len()).min(self.data.len() - offset);
            buf[..n].copy_from_slice(&self.data[offset..offset + n]);
            Ok(n)
        }
    }

    #[test]
    fn read_exact_at_survives_short_fills_and_interrupts() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for chunk in [1, 7, 64, 10_000] {
            let src = ShortReader {
                data: data.clone(),
                chunk,
                calls: AtomicUsize::new(0),
                interrupt_on: 2,
            };
            let mut out = vec![0u8; data.len()];
            read_exact_at(&src, &mut out, 0).unwrap();
            assert_eq!(out, data, "chunk {chunk}");
            // And from a nonzero offset.
            let mut tail = vec![0u8; 100];
            read_exact_at(&src, &mut tail, 9_900).unwrap();
            assert_eq!(tail, data[9_900..]);
        }
    }

    #[test]
    fn read_exact_at_reports_eof_as_error() {
        let src = ShortReader {
            data: vec![1, 2, 3],
            chunk: 2,
            calls: AtomicUsize::new(0),
            interrupt_on: usize::MAX,
        };
        let mut out = vec![0u8; 10];
        let err = read_exact_at(&src, &mut out, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn pooled_reads_reuse_the_backing_allocation() {
        let path = std::env::temp_dir().join(format!("memprof_pread_{}", std::process::id()));
        std::fs::write(&path, vec![0xABu8; 4096]).unwrap();
        let first = read_file_pooled(&path).unwrap();
        assert_eq!(first.len(), 4096);
        assert!(first.iter().all(|&b| b == 0xAB));
        let cap = first.buf.as_ref().unwrap().capacity();
        let ptr = first.buf.as_ref().unwrap().as_ptr();
        drop(first);
        // The next same-thread read draws the same allocation back
        // out of the pool.
        let second = read_file_pooled(&path).unwrap();
        assert_eq!(second.buf.as_ref().unwrap().capacity(), cap);
        assert_eq!(second.buf.as_ref().unwrap().as_ptr(), ptr);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        return_buffer(Vec::with_capacity(POOL_MAX_CAPACITY + 1));
        POOL.with(|pool| {
            assert!(pool
                .borrow()
                .iter()
                .all(|b| b.capacity() <= POOL_MAX_CAPACITY));
        });
    }
}
