//! A pure-Rust min-cost-flow oracle.
//!
//! Successive shortest paths with node potentials (Dijkstra on
//! reduced costs). Independent of the simulated network simplex in
//! every respect — different algorithm, different language, different
//! machine — so agreement of objective values is strong evidence both
//! are correct.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::instance::Instance;

/// A directed arc with capacity and cost.
#[derive(Clone, Copy, Debug)]
pub struct OArc {
    pub from: usize,
    pub to: usize,
    pub cap: i64,
    pub cost: i64,
}

/// A min-cost-flow problem: `supply[v]` positive for sources,
/// negative for sinks; must sum to zero.
#[derive(Clone, Debug, Default)]
pub struct McfProblem {
    pub n: usize,
    pub supply: Vec<i64>,
    pub arcs: Vec<OArc>,
}

/// Result of the oracle solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleResult {
    Optimal { cost: i64, flows: Vec<i64> },
    Infeasible,
}

impl McfProblem {
    /// Build the vehicle-scheduling transportation network for an
    /// instance, with the **full** candidate deadhead arc set (the
    /// simulated MCF prices these out incrementally). Node layout
    /// matches the simulated program: `e_i = i`, `s_i = n + i`,
    /// `S = 2n`, `T = 2n + 1`.
    pub fn from_instance(inst: &Instance) -> McfProblem {
        let n = inst.n();
        let e = |i: usize| i;
        let s = |i: usize| n + i;
        let depot_out = 2 * n;
        let depot_in = 2 * n + 1;

        let mut supply = vec![0i64; 2 * n + 2];
        for i in 0..n {
            supply[e(i)] = 1;
            supply[s(i)] = -1;
        }
        supply[depot_out] = n as i64;
        supply[depot_in] = -(n as i64);

        let mut arcs = Vec::new();
        for i in 0..n {
            arcs.push(OArc {
                from: depot_out,
                to: s(i),
                cap: 1,
                cost: inst.pull_out_cost(),
            });
            arcs.push(OArc {
                from: e(i),
                to: depot_in,
                cap: 1,
                cost: inst.pull_in_cost(),
            });
        }
        arcs.push(OArc {
            from: depot_out,
            to: depot_in,
            cap: n as i64,
            cost: 0,
        });
        for (i, j, cost) in inst.deadhead_arcs() {
            arcs.push(OArc {
                from: e(i),
                to: s(j),
                cap: 1,
                cost,
            });
        }
        McfProblem {
            n: 2 * n + 2,
            supply,
            arcs,
        }
    }

    /// Solve by successive shortest paths. Costs must be
    /// non-negative (true for this problem class).
    pub fn solve(&self) -> OracleResult {
        assert_eq!(self.supply.iter().sum::<i64>(), 0, "unbalanced supplies");
        let n = self.n;
        let m = self.arcs.len();

        // Residual graph: forward arc 2k, backward 2k+1.
        let mut head = vec![0usize; 2 * m];
        let mut cap = vec![0i64; 2 * m];
        let mut cost = vec![0i64; 2 * m];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, a) in self.arcs.iter().enumerate() {
            head[2 * k] = a.to;
            cap[2 * k] = a.cap;
            cost[2 * k] = a.cost;
            adj[a.from].push(2 * k);
            head[2 * k + 1] = a.from;
            cap[2 * k + 1] = 0;
            cost[2 * k + 1] = -a.cost;
            adj[a.to].push(2 * k + 1);
        }

        let mut excess: Vec<i64> = self.supply.clone();
        let mut potential = vec![0i64; n];
        let mut total_cost = 0i64;

        while let Some(source) = (0..n).find(|&v| excess[v] > 0) {
            // Dijkstra on reduced costs from `source`.
            const INF: i64 = i64::MAX / 4;
            let mut dist = vec![INF; n];
            let mut prev_arc = vec![usize::MAX; n];
            let mut heap = BinaryHeap::new();
            dist[source] = 0;
            heap.push(Reverse((0i64, source)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v] {
                    continue;
                }
                for &eidx in &adj[v] {
                    if cap[eidx] <= 0 {
                        continue;
                    }
                    let w = head[eidx];
                    let rc = cost[eidx] + potential[v] - potential[w];
                    debug_assert!(rc >= 0, "negative reduced cost in SSP");
                    let nd = d + rc;
                    if nd < dist[w] {
                        dist[w] = nd;
                        prev_arc[w] = eidx;
                        heap.push(Reverse((nd, w)));
                    }
                }
            }
            // Pick the nearest reachable node with negative excess.
            let Some(sink) = (0..n)
                .filter(|&v| excess[v] < 0 && dist[v] < INF)
                .min_by_key(|&v| dist[v])
            else {
                return OracleResult::Infeasible;
            };
            // Update potentials, capping at the sink distance so
            // reduced costs stay non-negative across the
            // reached/unreached frontier.
            let dsink = dist[sink];
            for v in 0..n {
                potential[v] += dist[v].min(dsink);
            }
            // Bottleneck along the path.
            let mut push = excess[source].min(-excess[sink]);
            let mut v = sink;
            while v != source {
                let e = prev_arc[v];
                push = push.min(cap[e]);
                v = head[e ^ 1];
            }
            // Apply.
            let mut v = sink;
            while v != source {
                let e = prev_arc[v];
                cap[e] -= push;
                cap[e ^ 1] += push;
                total_cost += push * cost[e];
                v = head[e ^ 1];
            }
            excess[source] -= push;
            excess[sink] += push;
        }

        let flows = (0..m).map(|k| cap[2 * k + 1]).collect();
        OracleResult::Optimal {
            cost: total_cost,
            flows,
        }
    }

    /// Check that a flow vector is feasible and compute its cost.
    pub fn check_flow(&self, flows: &[i64]) -> Option<i64> {
        if flows.len() != self.arcs.len() {
            return None;
        }
        let mut balance = self.supply.clone();
        let mut cost = 0i64;
        for (a, &f) in self.arcs.iter().zip(flows) {
            if f < 0 || f > a.cap {
                return None;
            }
            balance[a.from] -= f;
            balance[a.to] += f;
            cost += f * a.cost;
        }
        balance.iter().all(|&b| b == 0).then_some(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, InstanceParams};

    #[test]
    fn trivial_two_node_flow() {
        let p = McfProblem {
            n: 2,
            supply: vec![3, -3],
            arcs: vec![
                OArc {
                    from: 0,
                    to: 1,
                    cap: 2,
                    cost: 1,
                },
                OArc {
                    from: 0,
                    to: 1,
                    cap: 5,
                    cost: 4,
                },
            ],
        };
        let OracleResult::Optimal { cost, flows } = p.solve() else {
            panic!("must be feasible");
        };
        assert_eq!(cost, 2 + 4);
        assert_eq!(flows, vec![2, 1]);
        assert_eq!(p.check_flow(&flows), Some(cost));
    }

    #[test]
    fn chooses_cheaper_path() {
        // 0 -> 1 -> 3 costs 2; 0 -> 2 -> 3 costs 10.
        let p = McfProblem {
            n: 4,
            supply: vec![1, 0, 0, -1],
            arcs: vec![
                OArc {
                    from: 0,
                    to: 1,
                    cap: 1,
                    cost: 1,
                },
                OArc {
                    from: 1,
                    to: 3,
                    cap: 1,
                    cost: 1,
                },
                OArc {
                    from: 0,
                    to: 2,
                    cap: 1,
                    cost: 5,
                },
                OArc {
                    from: 2,
                    to: 3,
                    cap: 1,
                    cost: 5,
                },
            ],
        };
        let OracleResult::Optimal { cost, .. } = p.solve() else {
            panic!()
        };
        assert_eq!(cost, 2);
    }

    #[test]
    fn infeasible_detected() {
        let p = McfProblem {
            n: 3,
            supply: vec![1, 0, -1],
            arcs: vec![OArc {
                from: 0,
                to: 1,
                cap: 1,
                cost: 1,
            }],
        };
        assert_eq!(p.solve(), OracleResult::Infeasible);
    }

    #[test]
    fn vehicle_scheduling_is_feasible_and_bounded() {
        let inst = Instance::generate(InstanceParams {
            n_trips: 60,
            seed: 11,
            ..Default::default()
        });
        let p = McfProblem::from_instance(&inst);
        let OracleResult::Optimal { cost, flows } = p.solve() else {
            panic!("vehicle scheduling always feasible (one vehicle per trip)")
        };
        assert_eq!(p.check_flow(&flows), Some(cost));
        let n = inst.n() as i64;
        // Worst case: one vehicle per trip, no deadheads.
        assert!(cost <= n * crate::instance::VEHICLE_COST);
        // At least one vehicle is needed.
        assert!(cost >= crate::instance::VEHICLE_COST);
    }

    #[test]
    fn deadheads_reduce_cost() {
        let inst = Instance::generate(InstanceParams {
            n_trips: 80,
            seed: 5,
            ..Default::default()
        });
        let full = McfProblem::from_instance(&inst);
        let OracleResult::Optimal { cost: with_dh, .. } = full.solve() else {
            panic!()
        };
        // Remove deadhead arcs: every trip needs its own vehicle.
        let mut no_dh = full.clone();
        no_dh.arcs.truncate(2 * inst.n() + 1);
        let OracleResult::Optimal { cost: without, .. } = no_dh.solve() else {
            panic!()
        };
        assert_eq!(without, inst.n() as i64 * crate::instance::VEHICLE_COST);
        assert!(with_dh < without, "chaining trips must save vehicles");
    }
}
