//! Profile-feedback support (§4 of the paper: "the data can be used
//! to construct a feedback file, allowing a recompilation of the
//! target to be done with the insertion of prefetch instructions").
//!
//! A [`Feedback`] is the contract between the analyzer and the
//! compiler: the analyzer (or the `mp-opt` driver) writes one from an
//! experiment's views, and a recompilation applies it. It has grown
//! from the original prefetch-only form into the full §3.3 decision
//! set:
//!
//! * `prefetch FUNC LINE LOOKAHEAD` — emit a software prefetch of
//!   `address + LOOKAHEAD` alongside each load at that source
//!   position. Useful for streaming scans (positive lookahead covers
//!   the next cache line), useless for pointer chasing (no address to
//!   prefetch before the load that produces it).
//! * `reorder STRUCT f1,f2,... [pad=N]` — lay the named structure out
//!   with the listed members first, in that order (remaining members
//!   follow in declaration order), optionally padding the struct to
//!   `N` bytes. This is the paper's "re-arranging the members of the
//!   node and arc structures according to their frequency of
//!   reference" plus the 8-byte `node` pad.
//! * `heapalign N` — round every heap allocation's base up to an
//!   `N`-byte boundary (the paper's "aligning node and arc structures
//!   on cache lines"). Applied by the runtime allocator.
//! * `pagesize_heap N` — request `N`-byte pages for the heap segment
//!   (the paper's `-xpagesize_heap=512k`). The compiler records it;
//!   the machine that runs the binary applies it to its TLB.
//!
//! Parsing is strict: a malformed line fails the whole file with the
//! offending line and reason ([`FeedbackError`]) rather than silently
//! half-applying — a driver-emitted or hand-edited feedback file that
//! drops decisions on the floor would corrupt the measured deltas it
//! exists to produce.

/// One feedback entry: "the loads at this source position miss; fetch
/// ahead".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefetchHint {
    /// Function containing the hot load.
    pub function: String,
    /// Source line of the hot load.
    pub line: u32,
    /// Byte offset to prefetch relative to the load's effective
    /// address (typically one E$ line; may be negative for backward
    /// scans). Must fit in a 13-bit immediate together with the
    /// load's own offset.
    pub lookahead: i64,
}

/// One structure re-layout decision: the named members move to the
/// front in the given order; everything else keeps declaration order
/// behind them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReorderHint {
    /// The structure to re-lay-out.
    pub struct_name: String,
    /// Members to place first, hottest first. Names must exist in the
    /// struct and not repeat; not every member needs to be listed.
    pub order: Vec<String>,
    /// Pad the struct to this many bytes (≥ natural size, multiple of
    /// the struct's alignment).
    pub pad_to: Option<u64>,
}

/// A feedback file: the analyzer produces it, the compiler (and the
/// machine configuration, for the page-size decision) consumes it on
/// recompilation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Feedback {
    pub hints: Vec<PrefetchHint>,
    pub reorders: Vec<ReorderHint>,
    /// Alignment for heap allocations (power of two), if requested.
    pub heap_align: Option<u64>,
    /// Requested heap page size in bytes (power of two), if any.
    pub heap_page_bytes: Option<u64>,
}

/// A feedback file failed to parse: the offending line and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeedbackError {
    /// 1-based line number of the offending line.
    pub line_no: usize,
    /// The offending line, verbatim.
    pub line: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "feedback line {}: {} (`{}`)",
            self.line_no, self.reason, self.line
        )
    }
}

impl std::error::Error for FeedbackError {}

impl Feedback {
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
            && self.reorders.is_empty()
            && self.heap_align.is_none()
            && self.heap_page_bytes.is_none()
    }

    /// Lookahead for a load at `(function, line)`, if hinted.
    pub fn lookahead_for(&self, function: &str, line: u32) -> Option<i64> {
        self.hints
            .iter()
            .find(|h| h.line == line && h.function == function)
            .map(|h| h.lookahead)
    }

    /// Re-layout decision for a structure, if any.
    pub fn reorder_for(&self, struct_name: &str) -> Option<&ReorderHint> {
        self.reorders.iter().find(|r| r.struct_name == struct_name)
    }

    /// Serialize in the classic one-line-per-decision feedback-file
    /// form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.reorders {
            out.push_str(&format!("reorder {} {}", r.struct_name, r.order.join(",")));
            if let Some(pad) = r.pad_to {
                out.push_str(&format!(" pad={pad}"));
            }
            out.push('\n');
        }
        if let Some(align) = self.heap_align {
            out.push_str(&format!("heapalign {align}\n"));
        }
        if let Some(bytes) = self.heap_page_bytes {
            out.push_str(&format!("pagesize_heap {bytes}\n"));
        }
        for h in &self.hints {
            out.push_str(&format!(
                "prefetch {} {} {}\n",
                h.function, h.line, h.lookahead
            ));
        }
        out
    }

    /// Parse the text form. Blank lines and `#` comments are allowed;
    /// anything else must be a well-formed decision line, or the
    /// whole file is rejected with the offending line — feedback
    /// drives recompilation decisions, so a silently dropped line
    /// would corrupt the experiment it was emitted for.
    pub fn from_text(text: &str) -> Result<Feedback, FeedbackError> {
        let mut fb = Feedback::default();
        for (idx, raw) in text.lines().enumerate() {
            let err = |reason: String| FeedbackError {
                line_no: idx + 1,
                line: raw.to_string(),
                reason,
            };
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let f: Vec<&str> = line.split_whitespace().collect();
            match f[0] {
                "prefetch" => {
                    if f.len() != 4 {
                        return Err(err(format!(
                            "prefetch takes 3 fields (function line lookahead), got {}",
                            f.len() - 1
                        )));
                    }
                    let line_nr: u32 = f[2]
                        .parse()
                        .map_err(|_| err(format!("bad line number `{}`", f[2])))?;
                    let lookahead: i64 = f[3]
                        .parse()
                        .map_err(|_| err(format!("bad lookahead `{}`", f[3])))?;
                    fb.hints.push(PrefetchHint {
                        function: f[1].to_string(),
                        line: line_nr,
                        lookahead,
                    });
                }
                "reorder" => {
                    if f.len() < 3 || f.len() > 4 {
                        return Err(err(format!(
                            "reorder takes 2-3 fields (struct members [pad=N]), got {}",
                            f.len() - 1
                        )));
                    }
                    let order: Vec<String> = f[2]
                        .split(',')
                        .filter(|m| !m.is_empty())
                        .map(str::to_string)
                        .collect();
                    if order.is_empty() {
                        return Err(err("empty member list".to_string()));
                    }
                    for (i, m) in order.iter().enumerate() {
                        if order[..i].contains(m) {
                            return Err(err(format!("member `{m}` repeats in the order")));
                        }
                    }
                    let pad_to = match f.get(3) {
                        None => None,
                        Some(p) => {
                            let bytes = p
                                .strip_prefix("pad=")
                                .and_then(|v| v.parse::<u64>().ok())
                                .filter(|&v| v > 0)
                                .ok_or_else(|| err(format!("bad pad field `{p}`")))?;
                            Some(bytes)
                        }
                    };
                    if fb.reorder_for(f[1]).is_some() {
                        return Err(err(format!("duplicate reorder for struct `{}`", f[1])));
                    }
                    fb.reorders.push(ReorderHint {
                        struct_name: f[1].to_string(),
                        order,
                        pad_to,
                    });
                }
                "heapalign" => {
                    if f.len() != 2 {
                        return Err(err("heapalign takes 1 field (bytes)".to_string()));
                    }
                    let align = f[1]
                        .parse::<u64>()
                        .ok()
                        .filter(|a| a.is_power_of_two())
                        .ok_or_else(|| {
                            err(format!("bad alignment `{}` (power of two required)", f[1]))
                        })?;
                    if fb.heap_align.replace(align).is_some() {
                        return Err(err("duplicate heapalign".to_string()));
                    }
                }
                "pagesize_heap" => {
                    if f.len() != 2 {
                        return Err(err("pagesize_heap takes 1 field (bytes)".to_string()));
                    }
                    let bytes = f[1]
                        .parse::<u64>()
                        .ok()
                        .filter(|b| b.is_power_of_two())
                        .ok_or_else(|| {
                            err(format!("bad page size `{}` (power of two required)", f[1]))
                        })?;
                    if fb.heap_page_bytes.replace(bytes).is_some() {
                        return Err(err("duplicate pagesize_heap".to_string()));
                    }
                }
                other => return Err(err(format!("unknown decision kind `{other}`"))),
            }
        }
        Ok(fb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let fb = Feedback {
            hints: vec![
                PrefetchHint {
                    function: "primal_bea_mpp".into(),
                    line: 120,
                    lookahead: 512,
                },
                PrefetchHint {
                    function: "refresh_potential".into(),
                    line: 84,
                    lookahead: -128,
                },
            ],
            reorders: vec![ReorderHint {
                struct_name: "node".into(),
                order: vec!["orientation".into(), "child".into(), "pred".into()],
                pad_to: Some(128),
            }],
            heap_align: Some(512),
            heap_page_bytes: Some(512 * 1024),
        };
        assert_eq!(Feedback::from_text(&fb.to_text()).unwrap(), fb);
    }

    #[test]
    fn lookup() {
        let fb = Feedback {
            hints: vec![PrefetchHint {
                function: "f".into(),
                line: 10,
                lookahead: 512,
            }],
            ..Feedback::default()
        };
        assert_eq!(fb.lookahead_for("f", 10), Some(512));
        assert_eq!(fb.lookahead_for("f", 11), None);
        assert_eq!(fb.lookahead_for("g", 10), None);
    }

    #[test]
    fn malformed_lines_are_errors_with_position() {
        let e = Feedback::from_text("prefetch g 5 64\ngarbage\n").unwrap_err();
        assert_eq!(e.line_no, 2);
        assert_eq!(e.line, "garbage");
        assert!(e.reason.contains("unknown decision kind"), "{e}");

        let e = Feedback::from_text("prefetch f ten 512\n").unwrap_err();
        assert_eq!(e.line_no, 1);
        assert!(e.reason.contains("bad line number"), "{e}");

        // A failing file applies nothing: the error is the only out.
        assert!(Feedback::from_text("reorder node x,x\n").is_err());
        assert!(Feedback::from_text("reorder node\n").is_err());
        assert!(Feedback::from_text("heapalign 100\n").is_err());
        assert!(Feedback::from_text("pagesize_heap lots\n").is_err());
        assert!(Feedback::from_text("pagesize_heap 8192\npagesize_heap 8192\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ok() {
        let fb = Feedback::from_text("# produced by mp-opt\n\n  \nprefetch f 5 64\n").unwrap();
        assert_eq!(fb.hints.len(), 1);
        assert!(fb.reorders.is_empty());
    }

    #[test]
    fn reorder_lookup_and_pad() {
        let fb = Feedback::from_text("reorder arc ident,cost\nreorder node potential pad=128\n")
            .unwrap();
        assert_eq!(fb.reorder_for("arc").unwrap().order, vec!["ident", "cost"]);
        assert_eq!(fb.reorder_for("node").unwrap().pad_to, Some(128));
        assert!(fb.reorder_for("leaf").is_none());
    }
}
