//! Data TLB model with mixed page sizes.
//!
//! UltraSPARC-III has a 512-entry 2-way DTLB for 8 KB pages (plus
//! small fully-associative arrays for large pages). The paper's §3.3
//! shows that rebuilding MCF with `-xpagesize_heap=512k` cut DTLB
//! misses enough for a 3.9% gain; to reproduce that experiment the
//! model supports a per-*segment* page size: the heap can use large
//! pages while text/data/stack stay at the 8 KB system default.
//!
//! Entries are tagged with `(virtual page, page size class)` so mixed
//! sizes coexist, approximating the real hardware's separate arrays.

/// The Solaris default page size on the paper's machine.
pub const DEFAULT_PAGE_BYTES: u64 = 8 * 1024;

/// The page sizes the UltraSPARC-III MMU supports — the legal values
/// of a `-xpagesize_heap`-style request. (Solaris `ppgsz`/`-xpagesize`
/// accept exactly these on the paper's machine.)
pub const SUPPORTED_PAGE_BYTES: [u64; 4] = [8 * 1024, 64 * 1024, 512 * 1024, 4 * 1024 * 1024];

/// Is `bytes` a page size the MMU can map?
pub fn page_size_supported(bytes: u64) -> bool {
    SUPPORTED_PAGE_BYTES.contains(&bytes)
}

/// TLB geometry.
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
}

impl TlbConfig {
    /// Address bytes the TLB can map at once with uniform pages of
    /// `page_bytes` — the quantity a page-size decision trades against
    /// the working-set size (§3.3: 512 KB pages took the scaled DTLB's
    /// reach past MCF's heap).
    pub fn reach_bytes(&self, page_bytes: u64) -> u64 {
        self.entries as u64 * page_bytes
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 512,
            ways: 2,
        }
    }
}

/// One TLB entry: a virtual page number tagged with its size shift.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct TlbTag {
    vpn: u64,
    page_shift: u32,
}

const INVALID: TlbTag = TlbTag {
    vpn: u64::MAX,
    page_shift: 0,
};

/// Set-associative DTLB with LRU replacement.
pub struct Tlb {
    set_mask: u64,
    ways: usize,
    tags: Vec<TlbTag>,
    ages: Vec<u8>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.ways >= 1 && config.entries.is_multiple_of(config.ways));
        let sets = (config.entries / config.ways) as u64;
        assert!(sets.is_power_of_two());
        Tlb {
            set_mask: sets - 1,
            ways: config.ways as usize,
            tags: vec![INVALID; config.entries as usize],
            ages: vec![0; config.entries as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Translate an access to `addr` within a segment whose pages are
    /// `page_bytes` (a power of two). Returns `true` on a TLB hit.
    #[inline]
    pub fn access(&mut self, addr: u64, page_bytes: u64) -> bool {
        debug_assert!(page_bytes.is_power_of_two());
        let page_shift = page_bytes.trailing_zeros();
        let vpn = addr >> page_shift;
        let tag = TlbTag { vpn, page_shift };
        let set = (vpn & self.set_mask) as usize;
        let base = set * self.ways;
        let tags = &mut self.tags[base..base + self.ways];
        let ages = &mut self.ages[base..base + self.ways];

        for w in 0..tags.len() {
            if tags[w] == tag {
                let age = ages[w];
                for a in ages.iter_mut() {
                    if *a < age {
                        *a += 1;
                    }
                }
                ages[w] = 0;
                self.hits += 1;
                return true;
            }
        }

        let victim = match tags.iter().position(|&t| t == INVALID) {
            Some(w) => w,
            None => (0..tags.len()).max_by_key(|&w| ages[w]).unwrap(),
        };
        for a in ages.iter_mut() {
            *a = a.saturating_add(1);
        }
        tags[victim] = tag;
        ages[victim] = 0;
        self.misses += 1;
        false
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total reach in bytes for a uniform page size (diagnostic).
    pub fn reach_bytes(&self, page_bytes: u64) -> u64 {
        self.tags.len() as u64 * page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(TlbConfig::default());
        assert!(!t.access(0x4000_0000, DEFAULT_PAGE_BYTES));
        assert!(t.access(0x4000_1fff, DEFAULT_PAGE_BYTES));
        assert!(!t.access(0x4000_2000, DEFAULT_PAGE_BYTES));
        assert_eq!(t.stats(), (1, 2));
    }

    #[test]
    fn working_set_within_reach_stops_missing() {
        let mut t = Tlb::new(TlbConfig {
            entries: 16,
            ways: 2,
        });
        // 8 pages, uniformly spread across sets: fits.
        for round in 0..3 {
            for p in 0..8u64 {
                let hit = t.access(p * DEFAULT_PAGE_BYTES, DEFAULT_PAGE_BYTES);
                assert_eq!(hit, round > 0, "round {round} page {p}");
            }
        }
    }

    #[test]
    fn large_pages_extend_reach() {
        // A 4 MB working set with 8 KB pages = 512 pages; with 512 KB
        // pages = 8 pages. A 16-entry TLB thrashes on the former and
        // holds the latter.
        let mut t = Tlb::new(TlbConfig {
            entries: 16,
            ways: 2,
        });
        let span = 4 * 1024 * 1024u64;
        let stride = 8 * 1024u64;

        let mut misses_small = 0;
        for round in 0..2 {
            let mut a = 0;
            while a < span {
                if !t.access(0x4000_0000 + a, DEFAULT_PAGE_BYTES) && round == 1 {
                    misses_small += 1;
                }
                a += stride;
            }
        }
        assert!(
            misses_small > 400,
            "small pages should thrash: {misses_small}"
        );

        let mut t = Tlb::new(TlbConfig {
            entries: 16,
            ways: 2,
        });
        let mut misses_large = 0;
        for round in 0..2 {
            let mut a = 0;
            while a < span {
                if !t.access(0x4000_0000 + a, 512 * 1024) && round == 1 {
                    misses_large += 1;
                }
                a += stride;
            }
        }
        assert_eq!(misses_large, 0, "large pages should all hit after warmup");
    }

    #[test]
    fn mixed_page_sizes_coexist() {
        let mut t = Tlb::new(TlbConfig::default());
        t.access(0x4000_0000, 512 * 1024);
        t.access(0x2000_0000, DEFAULT_PAGE_BYTES);
        assert!(
            t.access(0x4007_ffff, 512 * 1024),
            "within the same large page"
        );
        assert!(
            t.access(0x2000_1000, DEFAULT_PAGE_BYTES),
            "within the same small page"
        );
    }
}
