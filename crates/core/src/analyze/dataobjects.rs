//! The data-object views — the paper's headline contribution
//! (§3.2.5): metrics aggregated by structure type (Figure 6), the
//! per-member expansion (Figure 7), and the backtracking
//! effectiveness analysis.

use std::collections::HashMap;
use std::fmt::Write as _;

use minic::MemDesc;

use super::views::sort_by_metric;
use super::{fmt_val_pct, Analysis, UnknownKind};
use crate::batch::{AttrTag, EventBatch, GroupKey};
use crate::experiment::EventSource;

fn intern_key(
    pool: &mut Vec<DataObjectKey>,
    index: &mut HashMap<DataObjectKey, u64>,
    key: DataObjectKey,
) -> u64 {
    *index.entry(key.clone()).or_insert_with(|| {
        pool.push(key);
        (pool.len() - 1) as u64
    })
}

/// Group by [`DataObjectKey`] over the data columns — the Figure 6
/// keyer. Every interned descriptor and `Unk*` tag is mapped to a
/// pooled key id up front, so the key column is two table lookups
/// per row and typed keys are cloned once per group, not per event.
struct ByDataObject {
    /// Is column `c` a backtracked data column?
    col_is_data: Vec<bool>,
    /// Pooled key id per interned descriptor id.
    desc_raw: Vec<u64>,
    /// Pooled key id per `AttrTag` discriminant (`Unk*` tags only).
    tag_raw: [u64; 7],
    /// The pool `desc_raw`/`tag_raw` index into.
    pool: Vec<DataObjectKey>,
}

impl ByDataObject {
    fn new(batch: &EventBatch, data_cols: &[usize], ncols: usize) -> ByDataObject {
        let mut col_is_data = vec![false; ncols];
        for &c in data_cols {
            col_is_data[c] = true;
        }
        let mut pool = Vec::new();
        let mut index = HashMap::new();
        let desc_raw = batch
            .descs
            .iter()
            .map(|d| {
                let key = match d {
                    MemDesc::Member { struct_name, .. } => {
                        DataObjectKey::Struct(struct_name.clone())
                    }
                    MemDesc::Scalar { .. } => DataObjectKey::Scalars,
                    _ => DataObjectKey::Unknown(UnknownKind::Unspecified),
                };
                intern_key(&mut pool, &mut index, key)
            })
            .collect();
        let mut tag_raw = [u64::MAX; 7];
        for tag in [
            AttrTag::UnkUnspecified,
            AttrTag::UnkUnresolvable,
            AttrTag::UnkUnascertainable,
            AttrTag::UnkUnidentified,
            AttrTag::UnkUnverifiable,
        ] {
            tag_raw[tag as usize] = intern_key(
                &mut pool,
                &mut index,
                DataObjectKey::Unknown(tag.unknown_kind().unwrap()),
            );
        }
        ByDataObject {
            col_is_data,
            desc_raw,
            tag_raw,
            pool,
        }
    }
}

impl GroupKey for ByDataObject {
    type Key = DataObjectKey;

    fn key(&self, batch: &EventBatch, i: usize) -> Option<DataObjectKey> {
        self.raw_of(batch, i)
            .map(|raw| self.pool[raw as usize].clone())
    }

    fn key_column(
        &self,
        batch: &EventBatch,
        range: std::ops::Range<usize>,
        out: &mut Vec<Option<u64>>,
    ) -> bool {
        for i in range {
            out.push(self.raw_of(batch, i));
        }
        true
    }

    fn decode_key(&self, _batch: &EventBatch, raw: u64) -> DataObjectKey {
        self.pool[raw as usize].clone()
    }
}

impl ByDataObject {
    fn raw_of(&self, batch: &EventBatch, i: usize) -> Option<u64> {
        if !self.col_is_data[batch.col[i] as usize] {
            return None;
        }
        match batch.tag[i] {
            AttrTag::Plain => None,
            AttrTag::Data => Some(self.desc_raw[batch.desc[i] as usize]),
            tag => Some(self.tag_raw[tag as usize]),
        }
    }
}

/// Group by member name within one target structure — the Figure 7
/// keyer. The raw key is the interned descriptor id; descriptors of
/// other structures resolve to `None` via a precomputed table.
struct ByMemberName {
    col_is_data: Vec<bool>,
    /// Member name per interned descriptor id, for members of the
    /// target structure only.
    member: Vec<Option<String>>,
}

impl ByMemberName {
    fn new(batch: &EventBatch, data_cols: &[usize], ncols: usize, target: &str) -> ByMemberName {
        let mut col_is_data = vec![false; ncols];
        for &c in data_cols {
            col_is_data[c] = true;
        }
        let member = batch
            .descs
            .iter()
            .map(|d| match d {
                MemDesc::Member {
                    struct_name,
                    member,
                    ..
                } if struct_name == target => Some(member.clone()),
                _ => None,
            })
            .collect();
        ByMemberName {
            col_is_data,
            member,
        }
    }
}

impl GroupKey for ByMemberName {
    type Key = String;

    fn key(&self, batch: &EventBatch, i: usize) -> Option<String> {
        if !self.col_is_data[batch.col[i] as usize] || batch.tag[i] != AttrTag::Data {
            return None;
        }
        self.member[batch.desc[i] as usize].clone()
    }

    fn key_column(
        &self,
        batch: &EventBatch,
        range: std::ops::Range<usize>,
        out: &mut Vec<Option<u64>>,
    ) -> bool {
        for i in range {
            let keep = self.col_is_data[batch.col[i] as usize]
                && batch.tag[i] == AttrTag::Data
                && self.member[batch.desc[i] as usize].is_some();
            out.push(keep.then(|| batch.desc[i] as u64));
        }
        true
    }

    fn decode_key(&self, _batch: &EventBatch, raw: u64) -> String {
        self.member[raw as usize].clone().unwrap()
    }
}

/// The key a data-object row aggregates under.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataObjectKey {
    /// `{structure:arc -}`
    Struct(String),
    /// Named scalars and arrays.
    Scalars,
    /// One of the §3.2.5 indeterminate categories.
    Unknown(UnknownKind),
}

/// One row of the Figure 6 table.
#[derive(Clone, Debug)]
pub struct DataObjectRow {
    pub name: String,
    pub samples: Vec<u64>,
}

/// The Figure 7 expansion of one structure.
#[derive(Clone, Debug)]
pub struct StructExpansion {
    pub struct_name: String,
    /// Whole-struct samples per column.
    pub total: Vec<u64>,
    /// (offset, rendered member, samples) per member, in layout order —
    /// including members that were never referenced, as in Figure 7.
    pub members: Vec<(u64, String, Vec<u64>)>,
    pub struct_size: u64,
}

/// Backtracking effectiveness per data column (§3.2.5): 100% minus
/// the metric values associated with `(Unresolvable)` and
/// `(Unascertainable)`.
#[derive(Clone, Debug)]
pub struct EffectivenessRow {
    pub column: usize,
    pub title: String,
    pub total: u64,
    pub unresolvable: u64,
    pub unascertainable: u64,
    pub effectiveness_pct: f64,
}

impl<'a, S: EventSource + ?Sized> Analysis<'a, S> {
    /// Figure 6: data objects ranked by the given data column. Only
    /// backtracked memory counters have data-object information.
    pub fn data_objects(&self, sort_col: usize) -> Vec<DataObjectRow> {
        let data_cols = self.data_columns();
        let map = self.kernel(&ByDataObject::new(
            &self.batch,
            &data_cols,
            self.columns.len(),
        ));

        let ncols = self.columns.len();
        let mut unknown_total = vec![0u64; ncols];
        for (k, v) in &map {
            if matches!(k, DataObjectKey::Unknown(_)) {
                for (t, x) in unknown_total.iter_mut().zip(v) {
                    *t += x;
                }
            }
        }

        let mut rows: Vec<DataObjectRow> = map
            .into_iter()
            .map(|(k, samples)| DataObjectRow {
                name: match k {
                    DataObjectKey::Struct(s) => format!("{{structure:{s} -}}"),
                    DataObjectKey::Scalars => "<Scalars>".to_string(),
                    DataObjectKey::Unknown(u) => u.label().to_string(),
                },
                samples,
            })
            .collect();
        sort_by_metric(
            &mut rows,
            |r| r.samples[sort_col],
            |a, b| a.name.cmp(&b.name),
        );

        // <Total> and <Unknown> pseudo-rows, as in Figure 6.
        let b = &self.batch;
        let mut total = vec![0u64; ncols];
        for i in 0..b.len() {
            let col = b.col[i] as usize;
            if data_cols.contains(&col) && b.tag[i] != AttrTag::Plain {
                total[col] += 1;
            }
        }
        let mut out = vec![DataObjectRow {
            name: "<Total>".to_string(),
            samples: total,
        }];
        if unknown_total.iter().any(|&x| x > 0) {
            // Insert <Unknown> at its sorted position later; simplest
            // is to add and re-sort the tail.
            rows.push(DataObjectRow {
                name: "<Unknown>".to_string(),
                samples: unknown_total,
            });
            sort_by_metric(
                &mut rows,
                |r| r.samples[sort_col],
                |a, b| a.name.cmp(&b.name),
            );
        }
        out.extend(rows);
        out
    }

    /// Render Figure 6. Only the backtracked memory counters carry
    /// data-object information, so (as in the paper) only those
    /// columns appear.
    pub fn render_data_objects(&self, sort_col: usize) -> String {
        let rows = self.data_objects(sort_col);
        let data_cols = self.data_columns();
        let totals = rows.first().map(|t| t.samples.clone()).unwrap_or_default();
        let mut out = String::new();
        let headers: Vec<String> = data_cols
            .iter()
            .map(|&i| format!("Data. {}", self.columns[i].title))
            .collect();
        writeln!(out, "{}   Name", headers.join(" | ")).unwrap();
        for r in rows {
            let cells: Vec<String> = data_cols
                .iter()
                .map(|&i| {
                    fmt_val_pct(
                        &self.columns[i],
                        r.samples[i],
                        totals.get(i).copied().unwrap_or(0),
                    )
                })
                .collect();
            writeln!(out, "{}   {}", cells.join("  "), r.name).unwrap();
        }
        out
    }

    /// Figure 7: expand one structure into per-member rows (all
    /// members in layout order, referenced or not).
    pub fn expand_struct(&self, struct_name: &str) -> Option<StructExpansion> {
        let sinfo = self.syms.struct_by_name(struct_name)?;
        let data_cols = self.data_columns();
        let ncols = self.columns.len();

        // One kernel pass keyed by member name; the whole-struct
        // total is the elementwise sum of the member rows.
        let mut by_member: HashMap<String, Vec<u64>> = self.kernel(&ByMemberName::new(
            &self.batch,
            &data_cols,
            ncols,
            struct_name,
        ));
        let mut total = vec![0u64; ncols];
        for samples in by_member.values() {
            for (t, x) in total.iter_mut().zip(samples) {
                *t += x;
            }
        }

        let members = sinfo
            .fields
            .iter()
            .map(|f| {
                let samples = by_member.remove(&f.name).unwrap_or_else(|| vec![0; ncols]);
                (
                    f.offset,
                    format!("+{} {{{} {}}}", f.offset, f.type_desc, f.name),
                    samples,
                )
            })
            .collect();
        Some(StructExpansion {
            struct_name: struct_name.to_string(),
            total,
            members,
            struct_size: sinfo.size,
        })
    }

    /// Render Figure 7 (data columns only, like Figure 6).
    pub fn render_struct_expansion(&self, struct_name: &str) -> Option<String> {
        let exp = self.expand_struct(struct_name)?;
        let data_cols = self.data_columns();
        let mut out = String::new();
        writeln!(
            out,
            "Data-object {{structure:{} -}} ({} bytes)",
            exp.struct_name, exp.struct_size
        )
        .unwrap();
        let data_total = exp.total.clone();
        let render_row = |samples: &[u64]| -> String {
            data_cols
                .iter()
                .map(|&i| fmt_val_pct(&self.columns[i], samples[i], data_total[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(
            out,
            "{}   {{structure:{} -}}",
            render_row(&exp.total),
            exp.struct_name
        )
        .unwrap();
        for (_, name, samples) in &exp.members {
            writeln!(out, "{}   {}", render_row(samples), name).unwrap();
        }
        Some(out)
    }

    /// §3.2.5: the effectiveness of the apropos backtracking per data
    /// column.
    pub fn effectiveness(&self) -> Vec<EffectivenessRow> {
        self.data_columns()
            .into_iter()
            .map(|col| {
                let b = &self.batch;
                let mut total = 0u64;
                let mut unresolvable = 0u64;
                let mut unascertainable = 0u64;
                for i in 0..b.len() {
                    if b.col[i] as usize != col {
                        continue;
                    }
                    total += 1;
                    match b.tag[i] {
                        AttrTag::UnkUnresolvable => unresolvable += 1,
                        AttrTag::UnkUnascertainable => unascertainable += 1,
                        _ => {}
                    }
                }
                let eff = if total == 0 {
                    100.0
                } else {
                    100.0 * (total - unresolvable - unascertainable) as f64 / total as f64
                };
                EffectivenessRow {
                    column: col,
                    title: self.columns[col].title.clone(),
                    total,
                    unresolvable,
                    unascertainable,
                    effectiveness_pct: eff,
                }
            })
            .collect()
    }
}
