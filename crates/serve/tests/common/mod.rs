//! Helpers shared by the serve integration tests: a scratch dir per
//! test, a deterministic synthetic collector run, and its local
//! (offline) byte rendition for parity assertions.

#![allow(dead_code)] // each test binary uses its own subset

use std::path::PathBuf;
use std::time::{Duration, Instant};

use memprof_core::{CollectSink, CounterRequest, PackedClockEvent, PackedHwcEvent, RunInfo};
use memprof_store::SegmentWriter;
use simsparc_machine::CounterEvent;

pub fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "memprof_serve_{tag}_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A minimal valid symbol table covering the synthetic PCs, so the
/// function-level views have something to resolve.
pub const SYMS: &str =
    "simsparc-syms text_base=0x10000\nMODULE 1 1 m m.c\nFUNC 0x10000 0x20000 0 1 func\n";

pub fn counters() -> Vec<CounterRequest> {
    vec![CounterRequest {
        event: CounterEvent::ECStallCycles,
        backtrack: true,
        interval: 4001,
    }]
}

/// Replay a deterministic synthetic run into any sink. `seed` varies
/// the PCs so different collectors contribute distinguishable events.
pub fn drive(sink: &mut impl CollectSink, seed: u64, segments: usize) {
    sink.begin(&counters(), Some(10007), 900_000_000).unwrap();
    sink.stacks(&[vec![0x1_0000], vec![0x1_0000, 0x1_0400]])
        .unwrap();
    for seg in 0..segments {
        let events: Vec<PackedHwcEvent> = (0..16)
            .map(|i| {
                let pc = 0x1_0000 + 4 * (seed * 31 + seg as u64 * 7 + i);
                PackedHwcEvent {
                    counter: 0,
                    delivered_pc: pc + 8,
                    candidate_pc: Some(pc),
                    ea: Some(0x4000_0000 + 64 * i),
                    stack: (i % 2) as u32,
                    truth_trigger_pc: pc,
                    truth_ea: Some(0x4000_0000 + 64 * i),
                    truth_skid: 2,
                }
            })
            .collect();
        sink.hwc_segment(&events).unwrap();
        let ticks: Vec<PackedClockEvent> = (0..4)
            .map(|i| PackedClockEvent {
                pc: 0x1_0000 + 4 * (seed + i),
                stack: 0,
            })
            .collect();
        sink.clock_segment(&ticks).unwrap();
    }
    let run = RunInfo {
        exit_code: 0,
        output: format!("run {seed}\n"),
        clock_hz: 900_000_000,
        dropped: vec![0],
        ..Default::default()
    };
    sink.finish(&run, &[format!("{seed} collect start")])
        .unwrap();
}

/// The same run rendered to local bytes with a plain [`SegmentWriter`].
pub fn local_bytes(seed: u64, segments: usize) -> Vec<u8> {
    let mut writer = SegmentWriter::new(Vec::new());
    writer.attach("syms.txt", SYMS);
    drive(&mut writer, seed, segments);
    writer.into_inner()
}

pub fn wait_for<T>(what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}
