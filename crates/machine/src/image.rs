//! Loadable program images and the virtual-address-space layout.
//!
//! An [`Image`] is what a linker (in this workspace, `minic`) hands to
//! the machine: decoded text at [`crate::TEXT_BASE`], initialized data
//! at [`crate::DATA_BASE`], and an entry point. Symbolic information
//! (function names, line tables, the `-xhwcprof` data descriptors)
//! deliberately does *not* live here — it travels separately from the
//! compiler to the analyzer, as in the real toolchain where the
//! experiment's `map` file records load objects whose symbol tables
//! are read at analysis time.

use crate::{DATA_BASE, HEAP_BASE, HEAP_END, STACK_TOP, TEXT_BASE};
use simsparc_isa::Insn;

/// Address-space segment classification, used for per-segment page
/// sizes (`-xpagesize_heap`) and the analyzer's memory-segment view.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SegmentKind {
    Text,
    Data,
    Heap,
    Stack,
}

impl SegmentKind {
    /// Classify a virtual address.
    #[inline]
    pub fn of_addr(addr: u64) -> SegmentKind {
        if addr >= TEXT_BASE {
            SegmentKind::Text
        } else if addr >= HEAP_END {
            SegmentKind::Stack
        } else if addr >= HEAP_BASE {
            SegmentKind::Heap
        } else {
            SegmentKind::Data
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            SegmentKind::Text => "text",
            SegmentKind::Data => "data",
            SegmentKind::Heap => "heap",
            SegmentKind::Stack => "stack",
        }
    }
}

/// A segment of the loaded address space (reported by the analyzer's
/// segment view).
#[derive(Clone, Copy, Debug)]
pub struct Segment {
    pub kind: SegmentKind,
    pub base: u64,
    pub len: u64,
}

/// A loadable program.
#[derive(Clone, Debug, Default)]
pub struct Image {
    /// Decoded instructions, loaded contiguously at [`TEXT_BASE`].
    pub text: Vec<Insn>,
    /// Initialized data, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Zero-initialized bytes following `data` (globals without
    /// initializers).
    pub bss_bytes: u64,
    /// Entry point (absolute address within text).
    pub entry: u64,
}

impl Image {
    /// Absolute address of the last text byte + 1.
    pub fn text_end(&self) -> u64 {
        TEXT_BASE + self.text.len() as u64 * 4
    }

    /// Serialize to a simple text format (`a.out` stand-in): header
    /// line, then one encoded instruction word per line, then the
    /// initialized data as hex bytes.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.text.len() * 9 + 64);
        writeln!(
            out,
            "simsparc-image entry={:#x} bss={} text={} data={}",
            self.entry,
            self.bss_bytes,
            self.text.len(),
            self.data.len()
        )
        .unwrap();
        for insn in &self.text {
            writeln!(out, "{:08x}", insn.encode()).unwrap();
        }
        for chunk in self.data.chunks(32) {
            for b in chunk {
                write!(out, "{b:02x}").unwrap();
            }
            out.push('\n');
        }
        std::fs::write(path, out)
    }

    /// Load an image written by [`Image::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Image> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let content = std::fs::read_to_string(path)?;
        let mut lines = content.lines();
        let header = lines.next().ok_or_else(|| bad("empty image"))?;
        let mut entry = 0u64;
        let mut bss = 0u64;
        let mut n_text = 0usize;
        let mut n_data = 0usize;
        for field in header.split_whitespace().skip(1) {
            let (k, v) = field.split_once('=').ok_or_else(|| bad("bad header"))?;
            match k {
                "entry" => {
                    entry = u64::from_str_radix(v.trim_start_matches("0x"), 16)
                        .map_err(|_| bad("bad entry"))?
                }
                "bss" => bss = v.parse().map_err(|_| bad("bad bss"))?,
                "text" => n_text = v.parse().map_err(|_| bad("bad text count"))?,
                "data" => n_data = v.parse().map_err(|_| bad("bad data count"))?,
                _ => {}
            }
        }
        let mut text = Vec::with_capacity(n_text);
        for _ in 0..n_text {
            let line = lines.next().ok_or_else(|| bad("truncated text"))?;
            let word = u32::from_str_radix(line.trim(), 16).map_err(|_| bad("bad word"))?;
            let insn = Insn::decode(word).map_err(|_| bad("undecodable instruction"))?;
            text.push(insn);
        }
        let mut data = Vec::with_capacity(n_data);
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.len() % 2 != 0 {
                return Err(bad("odd hex data line"));
            }
            for i in (0..line.len()).step_by(2) {
                data.push(
                    u8::from_str_radix(&line[i..i + 2], 16).map_err(|_| bad("bad data hex"))?,
                );
            }
        }
        if data.len() != n_data {
            return Err(bad("data length mismatch"));
        }
        Ok(Image {
            text,
            data,
            bss_bytes: bss,
            entry,
        })
    }

    /// The segments this image occupies once loaded.
    pub fn segments(&self) -> Vec<Segment> {
        vec![
            Segment {
                kind: SegmentKind::Text,
                base: TEXT_BASE,
                len: self.text.len() as u64 * 4,
            },
            Segment {
                kind: SegmentKind::Data,
                base: DATA_BASE,
                len: self.data.len() as u64 + self.bss_bytes,
            },
            Segment {
                kind: SegmentKind::Heap,
                base: HEAP_BASE,
                len: HEAP_END - HEAP_BASE,
            },
            Segment {
                kind: SegmentKind::Stack,
                base: STACK_TOP - 0x10_0000,
                len: 0x10_0000,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_classification() {
        assert_eq!(SegmentKind::of_addr(TEXT_BASE + 0x31b0), SegmentKind::Text);
        assert_eq!(SegmentKind::of_addr(DATA_BASE), SegmentKind::Data);
        assert_eq!(SegmentKind::of_addr(HEAP_BASE), SegmentKind::Heap);
        assert_eq!(SegmentKind::of_addr(HEAP_END - 1), SegmentKind::Heap);
        assert_eq!(SegmentKind::of_addr(STACK_TOP - 8), SegmentKind::Stack);
    }

    #[test]
    fn image_save_load_round_trip() {
        use simsparc_isa::{AluOp, Operand, Reg};
        let img = Image {
            text: vec![
                Insn::mov(Operand::Imm(5), Reg::O0),
                Insn::alu(AluOp::Add, Reg::O0, Operand::Imm(1), Reg::O0),
                Insn::Trap { num: 0 },
            ],
            data: (0..77u8).collect(),
            bss_bytes: 4096,
            entry: TEXT_BASE + 4,
        };
        let path = std::env::temp_dir().join(format!("img_{}.txt", std::process::id()));
        img.save(&path).unwrap();
        let loaded = Image::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.text, img.text);
        assert_eq!(loaded.data, img.data);
        assert_eq!(loaded.bss_bytes, img.bss_bytes);
        assert_eq!(loaded.entry, img.entry);
    }

    #[test]
    fn image_extents() {
        let img = Image {
            text: vec![Insn::Nop; 10],
            data: vec![0; 100],
            bss_bytes: 24,
            entry: TEXT_BASE,
        };
        assert_eq!(img.text_end(), TEXT_BASE + 40);
        let segs = img.segments();
        assert_eq!(segs[0].len, 40);
        assert_eq!(segs[1].len, 124);
    }
}
