//! Annotated source (Figure 3) and annotated disassembly (Figure 4).
//!
//! The disassembly view interleaves artificial `<branch target>` rows
//! (flagged with `*`) carrying the metrics of events whose
//! backtracking was blocked by that target — exactly the presentation
//! the paper describes in §3.2.3.

use std::collections::HashMap;
use std::fmt::Write as _;

use minic::render_memdesc;
use simsparc_isa::disasm;

use super::Analysis;
use crate::batch::{ByLine, ByLineInRange, ByPcInRange, NO_ID};
use crate::experiment::EventSource;

/// One line of annotated source.
#[derive(Clone, Debug)]
pub struct SourceRow {
    pub line_no: u32,
    pub text: String,
    pub samples: Vec<u64>,
}

/// One row of the per-source-line view (`er_print lines`).
#[derive(Clone, Debug)]
pub struct LineRow {
    pub function: String,
    pub line_no: u32,
    pub text: String,
    pub samples: Vec<u64>,
}

/// One row of annotated disassembly.
#[derive(Clone, Debug)]
pub struct DisasmRow {
    pub pc: u64,
    /// Source line of the instruction.
    pub line: u32,
    /// `true` for the artificial `<branch target>` pseudo-row.
    pub artificial: bool,
    /// Disassembled text (empty for artificial rows).
    pub text: String,
    /// Rendered data-object descriptor, if the instruction has one.
    pub descriptor: String,
    pub samples: Vec<u64>,
}

impl<'a, S: EventSource + ?Sized> Analysis<'a, S> {
    /// Figure 3: the function's source, annotated per line.
    pub fn annotated_source(&self, func: &str) -> Option<Vec<SourceRow>> {
        let f = self.syms.funcs.iter().find(|f| f.name == func)?;
        let module = &self.syms.modules[f.module];
        let ncols = self.columns.len();

        // Accumulate samples per line, restricted to this function.
        // The batch caches each event's source line, so the keyer
        // only needs the function's pc range.
        let map = self.kernel(&ByLineInRange {
            entry: f.entry,
            end: f.end,
        });

        // Line span of the function: from its metadata.
        let mut min_line = u32::MAX;
        let mut max_line = 0;
        let mut pc = f.entry;
        while pc < f.end {
            if let Some(l) = self.syms.line_at(pc) {
                if l > 0 {
                    min_line = min_line.min(l);
                    max_line = max_line.max(l);
                }
            }
            pc += 4;
        }
        if min_line == u32::MAX {
            return None;
        }

        let lines: Vec<&str> = module.source.lines().collect();
        let mut rows = Vec::new();
        for line_no in min_line..=max_line {
            let text = lines
                .get(line_no as usize - 1)
                .map(|s| s.to_string())
                .unwrap_or_default();
            let samples = map.get(&line_no).cloned().unwrap_or_else(|| vec![0; ncols]);
            rows.push(SourceRow {
                line_no,
                text,
                samples,
            });
        }
        Some(rows)
    }

    /// Render Figure 3. Hot lines (>= 5% of a column total) are
    /// flagged with `##` like the paper's listings.
    pub fn render_annotated_source(&self, func: &str) -> Option<String> {
        let rows = self.annotated_source(func)?;
        let totals = self.totals();
        let mut out = String::new();
        writeln!(out, "Annotated source of `{func}`").unwrap();
        for r in rows {
            let hot = r
                .samples
                .iter()
                .zip(&totals)
                .any(|(&s, &t)| t > 0 && s * 20 >= t);
            let marker = if hot { "##" } else { "  " };
            let cells: Vec<String> = self
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| match c.secs(r.samples[i]) {
                    Some(s) => format!("{s:>9.3}"),
                    None => format!("{:>7}", r.samples[i]),
                })
                .collect();
            writeln!(
                out,
                "{marker} {}  {:>4}. {}",
                cells.join(" "),
                r.line_no,
                r.text
            )
            .unwrap();
        }
        Some(out)
    }

    /// The `lines` view: metrics aggregated by (function, source
    /// line) across the whole program, hottest first.
    pub fn hot_lines(&self, sort_col: usize, limit: usize) -> Vec<LineRow> {
        // Aggregate on interned (function id, line) pairs, then fold
        // ids into (name, module, line) keys — duplicate names merge
        // exactly as when keying on the name directly.
        let map = self.kernel(&ByLine);
        let mut by_name: HashMap<(String, usize, u32), Vec<u64>> = HashMap::new();
        for ((fid, line), samples) in map {
            if fid == NO_ID {
                continue;
            }
            let f = &self.syms.funcs[fid as usize];
            match by_name.entry((f.name.clone(), f.module, line)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (dst, src) in e.get_mut().iter_mut().zip(&samples) {
                        *dst += src;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(samples);
                }
            }
        }
        let mut rows: Vec<LineRow> = by_name
            .into_iter()
            .map(|((function, module, line_no), samples)| {
                let text = self.syms.modules[module]
                    .source
                    .lines()
                    .nth(line_no.saturating_sub(1) as usize)
                    .unwrap_or("")
                    .trim()
                    .to_string();
                LineRow {
                    function,
                    line_no,
                    text,
                    samples,
                }
            })
            .collect();
        super::views::sort_by_metric(
            &mut rows,
            |r| r.samples[sort_col],
            |a, b| (&a.function, a.line_no).cmp(&(&b.function, b.line_no)),
        );
        rows.truncate(limit);
        rows
    }

    /// Figure 4: annotated disassembly with `<branch target>` rows.
    pub fn annotated_disasm(&self, func: &str) -> Option<Vec<DisasmRow>> {
        let f = self.syms.funcs.iter().find(|f| f.name == func)?.clone();
        let ncols = self.columns.len();

        // Real-instruction samples.
        let real = self.kernel(&ByPcInRange {
            entry: f.entry,
            end: f.end,
            artificial: false,
        });
        // Artificial branch-target samples.
        let artificial = self.kernel(&ByPcInRange {
            entry: f.entry,
            end: f.end,
            artificial: true,
        });

        // Instructions from the first experiment's text are not
        // available here; the symbol table has enough (meta) but the
        // instruction words live in the machine image. The analyzer
        // receives them through the `text` argument of
        // `annotated_disasm_with_text`; this variant fills in
        // placeholders.
        let mut rows = Vec::new();
        let mut pc = f.entry;
        while pc < f.end {
            let meta = self.syms.meta_at(pc);
            let line = meta.map(|m| m.line).unwrap_or(0);
            if meta.is_some_and(|m| m.is_branch_target) || artificial.contains_key(&pc) {
                rows.push(DisasmRow {
                    pc,
                    line,
                    artificial: true,
                    text: "<branch target>".to_string(),
                    descriptor: String::new(),
                    samples: artificial
                        .get(&pc)
                        .cloned()
                        .unwrap_or_else(|| vec![0; ncols]),
                });
            }
            let descriptor = meta.map(|m| render_memdesc(&m.memdesc)).unwrap_or_default();
            rows.push(DisasmRow {
                pc,
                line,
                artificial: false,
                text: String::new(),
                descriptor,
                samples: real.get(&pc).cloned().unwrap_or_else(|| vec![0; ncols]),
            });
            pc += 4;
        }
        Some(rows)
    }

    /// Figure 4 with instruction text: `text` is the loaded program
    /// text (from [`minic::Program::image`]).
    pub fn render_annotated_disasm(
        &self,
        func: &str,
        text: &[simsparc_isa::Insn],
    ) -> Option<String> {
        let rows = self.annotated_disasm(func)?;
        let totals = self.totals();
        let base = self.syms.text_base;
        let mut out = String::new();
        writeln!(out, "Annotated disassembly of `{func}`").unwrap();
        for r in rows {
            let hot = r
                .samples
                .iter()
                .zip(&totals)
                .any(|(&s, &t)| t > 0 && s * 20 >= t);
            let marker = if hot { "##" } else { "  " };
            let cells: Vec<String> = self
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| match c.secs(r.samples[i]) {
                    Some(s) => format!("{s:>9.3}"),
                    None => format!("{:>7}", r.samples[i]),
                })
                .collect();
            if r.artificial {
                writeln!(
                    out,
                    "{marker} {}  [{:>3}] {:#x}* <branch target>",
                    cells.join(" "),
                    r.line,
                    r.pc
                )
                .unwrap();
            } else {
                let idx = ((r.pc - base) / 4) as usize;
                let asm = text
                    .get(idx)
                    .map(|i| disasm(i, r.pc))
                    .unwrap_or_else(|| "???".to_string());
                write!(
                    out,
                    "{marker} {}  [{:>3}] {:#x}: {}",
                    cells.join(" "),
                    r.line,
                    r.pc,
                    asm
                )
                .unwrap();
                if !r.descriptor.is_empty() {
                    write!(out, "  {}", r.descriptor).unwrap();
                }
                out.push('\n');
            }
        }
        Some(out)
    }
}
