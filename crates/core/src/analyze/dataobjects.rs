//! The data-object views — the paper's headline contribution
//! (§3.2.5): metrics aggregated by structure type (Figure 6), the
//! per-member expansion (Figure 7), and the backtracking
//! effectiveness analysis.

use std::collections::HashMap;
use std::fmt::Write as _;

use minic::MemDesc;

use super::{fmt_val_pct, Analysis, Attribution, UnknownKind};
use crate::experiment::EventSource;

/// The key a data-object row aggregates under.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataObjectKey {
    /// `{structure:arc -}`
    Struct(String),
    /// Named scalars and arrays.
    Scalars,
    /// One of the §3.2.5 indeterminate categories.
    Unknown(UnknownKind),
}

/// One row of the Figure 6 table.
#[derive(Clone, Debug)]
pub struct DataObjectRow {
    pub name: String,
    pub samples: Vec<u64>,
}

/// The Figure 7 expansion of one structure.
#[derive(Clone, Debug)]
pub struct StructExpansion {
    pub struct_name: String,
    /// Whole-struct samples per column.
    pub total: Vec<u64>,
    /// (offset, rendered member, samples) per member, in layout order —
    /// including members that were never referenced, as in Figure 7.
    pub members: Vec<(u64, String, Vec<u64>)>,
    pub struct_size: u64,
}

/// Backtracking effectiveness per data column (§3.2.5): 100% minus
/// the metric values associated with `(Unresolvable)` and
/// `(Unascertainable)`.
#[derive(Clone, Debug)]
pub struct EffectivenessRow {
    pub column: usize,
    pub title: String,
    pub total: u64,
    pub unresolvable: u64,
    pub unascertainable: u64,
    pub effectiveness_pct: f64,
}

impl<'a, S: EventSource + ?Sized> Analysis<'a, S> {
    /// Figure 6: data objects ranked by the given data column. Only
    /// backtracked memory counters have data-object information.
    pub fn data_objects(&self, sort_col: usize) -> Vec<DataObjectRow> {
        let data_cols = self.data_columns();
        let map = self.accumulate(|r| {
            if !data_cols.contains(&r.col) {
                return None;
            }
            Some(match &r.attr {
                Attribution::DataObject { desc, .. } => match desc {
                    MemDesc::Member { struct_name, .. } => {
                        DataObjectKey::Struct(struct_name.clone())
                    }
                    MemDesc::Scalar { .. } => DataObjectKey::Scalars,
                    _ => DataObjectKey::Unknown(UnknownKind::Unspecified),
                },
                Attribution::Unknown { kind, .. } => DataObjectKey::Unknown(*kind),
                Attribution::Plain { .. } => return None,
            })
        });

        let ncols = self.columns.len();
        let mut unknown_total = vec![0u64; ncols];
        for (k, v) in &map {
            if matches!(k, DataObjectKey::Unknown(_)) {
                for (t, x) in unknown_total.iter_mut().zip(v) {
                    *t += x;
                }
            }
        }

        let mut rows: Vec<DataObjectRow> = map
            .into_iter()
            .map(|(k, samples)| DataObjectRow {
                name: match k {
                    DataObjectKey::Struct(s) => format!("{{structure:{s} -}}"),
                    DataObjectKey::Scalars => "<Scalars>".to_string(),
                    DataObjectKey::Unknown(u) => u.label().to_string(),
                },
                samples,
            })
            .collect();
        rows.sort_by(|a, b| b.samples[sort_col].cmp(&a.samples[sort_col]).then(a.name.cmp(&b.name)));

        // <Total> and <Unknown> pseudo-rows, as in Figure 6.
        let mut total = vec![0u64; ncols];
        for r in &self.reduced {
            if data_cols.contains(&r.col) && !matches!(r.attr, Attribution::Plain { .. }) {
                total[r.col] += 1;
            }
        }
        let mut out = vec![DataObjectRow {
            name: "<Total>".to_string(),
            samples: total,
        }];
        if unknown_total.iter().any(|&x| x > 0) {
            // Insert <Unknown> at its sorted position later; simplest
            // is to add and re-sort the tail.
            rows.push(DataObjectRow {
                name: "<Unknown>".to_string(),
                samples: unknown_total,
            });
            rows.sort_by(|a, b| {
                b.samples[sort_col]
                    .cmp(&a.samples[sort_col])
                    .then(a.name.cmp(&b.name))
            });
        }
        out.extend(rows);
        out
    }

    /// Render Figure 6. Only the backtracked memory counters carry
    /// data-object information, so (as in the paper) only those
    /// columns appear.
    pub fn render_data_objects(&self, sort_col: usize) -> String {
        let rows = self.data_objects(sort_col);
        let data_cols = self.data_columns();
        let totals = rows
            .first()
            .map(|t| t.samples.clone())
            .unwrap_or_default();
        let mut out = String::new();
        let headers: Vec<String> = data_cols
            .iter()
            .map(|&i| format!("Data. {}", self.columns[i].title))
            .collect();
        writeln!(out, "{}   Name", headers.join(" | ")).unwrap();
        for r in rows {
            let cells: Vec<String> = data_cols
                .iter()
                .map(|&i| {
                    fmt_val_pct(
                        &self.columns[i],
                        r.samples[i],
                        totals.get(i).copied().unwrap_or(0),
                    )
                })
                .collect();
            writeln!(out, "{}   {}", cells.join("  "), r.name).unwrap();
        }
        out
    }

    /// Figure 7: expand one structure into per-member rows (all
    /// members in layout order, referenced or not).
    pub fn expand_struct(&self, struct_name: &str) -> Option<StructExpansion> {
        let sinfo = self.syms.struct_by_name(struct_name)?;
        let data_cols = self.data_columns();
        let ncols = self.columns.len();

        let mut by_member: HashMap<String, Vec<u64>> = HashMap::new();
        let mut total = vec![0u64; ncols];
        for r in &self.reduced {
            if !data_cols.contains(&r.col) {
                continue;
            }
            if let Attribution::DataObject {
                desc:
                    MemDesc::Member {
                        struct_name: s,
                        member,
                        ..
                    },
                ..
            } = &r.attr
            {
                if s == struct_name {
                    by_member.entry(member.clone()).or_insert_with(|| vec![0; ncols])[r.col] += 1;
                    total[r.col] += 1;
                }
            }
        }

        let members = sinfo
            .fields
            .iter()
            .map(|f| {
                let samples = by_member.remove(&f.name).unwrap_or_else(|| vec![0; ncols]);
                (
                    f.offset,
                    format!("+{} {{{} {}}}", f.offset, f.type_desc, f.name),
                    samples,
                )
            })
            .collect();
        Some(StructExpansion {
            struct_name: struct_name.to_string(),
            total,
            members,
            struct_size: sinfo.size,
        })
    }

    /// Render Figure 7 (data columns only, like Figure 6).
    pub fn render_struct_expansion(&self, struct_name: &str) -> Option<String> {
        let exp = self.expand_struct(struct_name)?;
        let data_cols = self.data_columns();
        let mut out = String::new();
        writeln!(
            out,
            "Data-object {{structure:{} -}} ({} bytes)",
            exp.struct_name, exp.struct_size
        )
        .unwrap();
        let data_total = exp.total.clone();
        let render_row = |samples: &[u64]| -> String {
            data_cols
                .iter()
                .map(|&i| fmt_val_pct(&self.columns[i], samples[i], data_total[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(
            out,
            "{}   {{structure:{} -}}",
            render_row(&exp.total),
            exp.struct_name
        )
        .unwrap();
        for (_, name, samples) in &exp.members {
            writeln!(out, "{}   {}", render_row(samples), name).unwrap();
        }
        Some(out)
    }

    /// §3.2.5: the effectiveness of the apropos backtracking per data
    /// column.
    pub fn effectiveness(&self) -> Vec<EffectivenessRow> {
        self.data_columns()
            .into_iter()
            .map(|col| {
                let mut total = 0u64;
                let mut unresolvable = 0u64;
                let mut unascertainable = 0u64;
                for r in self.reduced.iter().filter(|r| r.col == col) {
                    total += 1;
                    match r.attr {
                        Attribution::Unknown {
                            kind: UnknownKind::Unresolvable,
                            ..
                        } => unresolvable += 1,
                        Attribution::Unknown {
                            kind: UnknownKind::Unascertainable,
                            ..
                        } => unascertainable += 1,
                        _ => {}
                    }
                }
                let eff = if total == 0 {
                    100.0
                } else {
                    100.0 * (total - unresolvable - unascertainable) as f64 / total as f64
                };
                EffectivenessRow {
                    column: col,
                    title: self.columns[col].title.clone(),
                    total,
                    unresolvable,
                    unascertainable,
                    effectiveness_pct: eff,
                }
            })
            .collect()
    }
}
