//! # minic — a mini-C compiler with memory-profiling support
//!
//! This crate stands in for the Sun ONE Studio 8 C compiler of the
//! paper *Memory Profiling using Hardware Counters* (SC'03). It
//! compiles a C subset (longs, chars behind pointers, structs,
//! pointers, functions, loops) to the SimSPARC ISA and — when invoked
//! with the equivalent of `-xhwcprof -xdebugformat=dwarf` — emits the
//! symbolic information the memory profiler needs (§2.1):
//!
//! * every memory operation cross-referenced with the data object it
//!   references ([`MemDesc`]),
//! * branch-target tables for trigger-PC validation,
//! * PC → source-line maps,
//! * `nop` padding between memory operations and join nodes, and no
//!   memory operations in branch delay slots.
//!
//! ```
//! use minic::{compile_and_link, CompileOptions};
//!
//! let src = r#"
//!     long main() {
//!         long i;
//!         long s = 0;
//!         for (i = 0; i < 10; i = i + 1) { s = s + i; }
//!         return s;
//!     }
//! "#;
//! let program = compile_and_link(&[("demo.c", src)], CompileOptions::profiling()).unwrap();
//! assert!(program.syms.funcs.iter().any(|f| f.name == "main"));
//! ```

mod ast;
mod codegen;
mod error;
mod feedback;
mod hir;
mod lexer;
mod link;
mod parser;
mod sema;
mod symtab;
mod token;
mod types;

pub use ast::{BinOp, UnOp};
pub use codegen::{CompileOptions, ObjModule, RelocKind};
pub use error::{CompileError, Phase, Result};
pub use feedback::{Feedback, FeedbackError, PrefetchHint, ReorderHint};
pub use hir::MemDesc;
pub use link::{link, Program};
pub use symtab::{render_memdesc, FuncSym, GlobalSym, ModuleSym, PcMeta, SymbolTable};
pub use types::{FieldInfo, StructInfo, Type};

/// Compile one source module.
pub fn compile_module(name: &str, src: &str, options: CompileOptions) -> Result<ObjModule> {
    compile_module_with_feedback(name, src, options, &Feedback::default())
}

/// Compile one source module with profile feedback (§4 of the paper:
/// the analyzer's feedback file drives recompilation decisions).
/// Prefetch hints apply in codegen; structure re-layout hints apply
/// during struct layout in sema.
pub fn compile_module_with_feedback(
    name: &str,
    src: &str,
    options: CompileOptions,
    feedback: &Feedback,
) -> Result<ObjModule> {
    let ast = parser::parse_module(name, src)?;
    let hir = sema::analyze_with_feedback(&ast, feedback)?;
    codegen::generate(&hir, options, feedback)
}

/// The runtime-support module (`libc` stand-in): a bump-pointer
/// `malloc`/`free`. Like the real `libc.so.1` in the paper's
/// experiments, it is *not* compiled with `-xhwcprof`, so profile
/// events landing in it become `(Unascertainable)` in the analyzer's
/// data-object view — faithfully reproducing §3.2.5.
pub const RUNTIME_SOURCE: &str = r#"
// minic runtime: bump-pointer allocator over the simulated heap.
long __heap_ptr;

char *malloc(long nbytes) {
    long p;
    long *hdr;
    if (__heap_ptr == 0) {
        __heap_ptr = 1073741824; // HEAP_BASE = 0x4000_0000
    }
    nbytes = nbytes + 15;
    nbytes = nbytes - nbytes % 16;
    // Allocation header, as a real allocator writes: profile events
    // triggered by this store land in a module without -xhwcprof and
    // become (Unascertainable), like the paper's libc.so.1 events.
    hdr = (long*)__heap_ptr;
    *hdr = nbytes;
    p = __heap_ptr + 16;
    __heap_ptr = p + nbytes;
    return (char*)p;
}

void free(char *p) {
    // Allocation is bump-only; MCF frees nothing on the hot path.
}
"#;

/// Compile the runtime-support module (always without `-xhwcprof`,
/// like a system library).
pub fn runtime_module() -> ObjModule {
    let opts = CompileOptions {
        hwcprof: false,
        dwarf: false,
        prefetch: false,
        opt: true,
    };
    compile_module("libc_rt.c", RUNTIME_SOURCE, opts).expect("runtime module must always compile")
}

/// The runtime-support module with `malloc` returning `align`-byte
/// aligned blocks (`align` a power of two > 16) — the §3.3 `heapalign`
/// feedback decision ("aligning node and arc structures on cache
/// lines"). The default 16-byte allocator keeps its exact historic
/// code (and therefore code bytes) when no alignment is requested.
pub fn runtime_module_aligned(align: u64) -> ObjModule {
    assert!(align.is_power_of_two() && align > 16, "bad heapalign");
    let opts = CompileOptions {
        hwcprof: false,
        dwarf: false,
        prefetch: false,
        opt: true,
    };
    let src = format!(
        r#"
// minic runtime: bump-pointer allocator over the simulated heap,
// returning {align}-byte aligned blocks (profile feedback `heapalign`).
long __heap_ptr;

char *malloc(long nbytes) {{
    long p;
    long *hdr;
    if (__heap_ptr == 0) {{
        __heap_ptr = 1073741824; // HEAP_BASE = 0x4000_0000
    }}
    nbytes = nbytes + 15;
    nbytes = nbytes - nbytes % 16;
    p = __heap_ptr + 16;
    p = (p + {pad}) / {align} * {align};
    // Allocation header just below the aligned block, as in the
    // unaligned allocator; events landing here stay (Unascertainable).
    hdr = (long*)(p - 16);
    *hdr = nbytes;
    __heap_ptr = p + nbytes;
    return (char*)p;
}}

void free(char *p) {{
    // Allocation is bump-only; MCF frees nothing on the hot path.
}}
"#,
        pad = align - 1,
    );
    compile_module("libc_rt.c", &src, opts).expect("aligned runtime module must always compile")
}

/// Compile the given sources with uniform options, add the runtime
/// module, and link. Programs that call `malloc`/`free` must declare
/// them (`extern char *malloc(long nbytes);`).
pub fn compile_and_link(sources: &[(&str, &str)], options: CompileOptions) -> Result<Program> {
    compile_and_link_with_feedback(sources, options, &Feedback::default())
}

/// [`compile_and_link`] with profile feedback: prefetch hints,
/// structure re-layout, and heap-allocation alignment all apply; the
/// `pagesize_heap` decision is recorded in the feedback for whoever
/// configures the machine (page size is a property of the MMU, not
/// the binary).
pub fn compile_and_link_with_feedback(
    sources: &[(&str, &str)],
    options: CompileOptions,
    feedback: &Feedback,
) -> Result<Program> {
    let mut modules = Vec::with_capacity(sources.len() + 1);
    for (name, src) in sources {
        modules.push(compile_module_with_feedback(name, src, options, feedback)?);
    }
    modules.push(match feedback.heap_align {
        Some(align) if align > 16 => runtime_module_aligned(align),
        _ => runtime_module(),
    });
    link(&modules)
}
