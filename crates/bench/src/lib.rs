//! Benchmark harness: reproduces every table and figure of the
//! paper's evaluation (§3) against the simulated machine.
//!
//! The instance scale and machine geometry are fixed here so every
//! figure is generated from the same pair of experiments the paper
//! uses:
//!
//! ```text
//! collect -S off -p on  -h +ecstall,lo,+ecrm,on  mcf.exe mcf.in   (E1)
//! collect -S off -p off -h +ecref,on,+dtlbm,on   mcf.exe mcf.in   (E2)
//! ```
//!
//! Overflow intervals are scaled to the simulated run length (the
//! real tool's `lo`/`on` presets assume a 550-second run; ours lasts
//! tens of simulated milliseconds) — interval selection is a
//! first-class parameter of the real `collect` too.

use std::path::Path;

use memprof_core::{
    collect, collect_stream, parse_counter_spec, CollectConfig, Experiment, StreamConfig,
    StreamStats,
};
use memprof_store::{SegmentWriter, StreamFile};
use minic::{CompileOptions, Program};
use simsparc_machine::{Machine, MachineConfig};

pub use mcf::{paper_machine_config, Instance, InstanceParams, Layout, McfParams, McfResult};

/// Workload scale for the figure experiments.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub n_trips: usize,
    pub window: usize,
    pub seed: u64,
}

impl Scale {
    /// The scale used for the published figures: big enough that the
    /// working set exceeds the (scaled) E$ and DTLB reach.
    pub fn paper() -> Scale {
        Scale {
            n_trips: 1200,
            window: 60,
            seed: 181,
        }
    }

    /// A smaller scale for tests.
    pub fn test() -> Scale {
        Scale {
            n_trips: 250,
            window: 30,
            seed: 181,
        }
    }

    pub fn instance(&self) -> Instance {
        Instance::generate(InstanceParams {
            n_trips: self.n_trips,
            window: self.window,
            seed: self.seed,
            ..Default::default()
        })
    }
}

/// Everything needed to regenerate the paper's figures.
pub struct PaperRun {
    pub program: Program,
    /// Experiment 1: `-p on -h +ecstall,...,+ecrm,...`.
    pub exp1: Experiment,
    /// Experiment 2: `-p off -h +ecref,...,+dtlbm,...`.
    pub exp2: Experiment,
    pub result: McfResult,
    pub instance: Instance,
}

/// Compile the baseline MCF with profiling support and run the
/// paper's two collection experiments.
pub fn run_paper_experiments(scale: Scale) -> PaperRun {
    let instance = scale.instance();
    let binary = mcf::compile_mcf(
        &instance,
        Layout::Baseline,
        &McfParams::default(),
        CompileOptions::profiling(),
    )
    .expect("mcf must compile");

    let run_one = |spec: &str, clock: bool| -> Experiment {
        let mut machine = Machine::new(paper_machine_config());
        machine.load(&binary.program.image);
        mcf::stage_instance(&mut machine, &binary.program, &instance);
        let config = CollectConfig {
            counters: parse_counter_spec(spec).unwrap(),
            clock_profiling: clock,
            clock_period_cycles: 20011,
            max_insns: mcf::MAX_INSNS,
        };
        collect(&mut machine, &config).expect("collection must succeed")
    };

    // Paper experiment 1: E$ stall cycles (backtracked) + E$ read
    // misses (backtracked), clock profiling on.
    let exp1 = run_one("+ecstall,99991,+ecrm,499", true);
    // Paper experiment 2: E$ references + DTLB misses.
    let exp2 = run_one("+ecref,2003,+dtlbm,97", false);

    let outcome = simsparc_machine::RunOutcome {
        exit_code: exp1.run.exit_code,
        output: exp1.run.output.clone(),
        counts: exp1.run.counts,
        dropped_overflows: [0, 0],
    };
    let result = mcf::parse_result(&outcome).expect("mcf must solve");
    mcf::verify_against_oracle(&instance, &result).expect("oracle agreement");

    PaperRun {
        program: binary.program,
        exp1,
        exp2,
        result,
        instance,
    }
}

/// Like [`run_paper_experiments`], but each collection streams into a
/// packed store file (`DIR/exp1.mpes`, `DIR/exp2.mpes`) with bounded
/// buffering, and the experiments handed back are *reloaded from those
/// files* — so every figure generated from the result doubles as an
/// end-to-end check of the streaming path. Also returns the
/// collector's self-observability stats for both runs.
pub fn run_paper_experiments_streamed(
    scale: Scale,
    dir: &Path,
    spill_events: usize,
) -> (PaperRun, [StreamStats; 2]) {
    let instance = scale.instance();
    let binary = mcf::compile_mcf(
        &instance,
        Layout::Baseline,
        &McfParams::default(),
        CompileOptions::profiling(),
    )
    .expect("mcf must compile");

    std::fs::create_dir_all(dir).expect("create stream dir");
    let run_one = |spec: &str, clock: bool, name: &str| -> (Experiment, StreamStats) {
        let mut machine = Machine::new(paper_machine_config());
        machine.load(&binary.program.image);
        mcf::stage_instance(&mut machine, &binary.program, &instance);
        let config = CollectConfig {
            counters: parse_counter_spec(spec).unwrap(),
            clock_profiling: clock,
            clock_period_cycles: 20011,
            max_insns: mcf::MAX_INSNS,
        };
        let path = dir.join(name);
        let mut writer = SegmentWriter::create(&path).expect("create stream file");
        let stream = StreamConfig { spill_events };
        let stats = collect_stream(&mut machine, &config, &stream, &mut writer)
            .expect("streamed collection must succeed");
        let file = StreamFile::open(&path).expect("reopen stream file");
        assert!(file.is_complete(), "fresh stream file must be complete");
        (file.to_experiment().expect("rehydrate"), stats)
    };

    let (exp1, stats1) = run_one("+ecstall,99991,+ecrm,499", true, "exp1.mpes");
    let (exp2, stats2) = run_one("+ecref,2003,+dtlbm,97", false, "exp2.mpes");

    let outcome = simsparc_machine::RunOutcome {
        exit_code: exp1.run.exit_code,
        output: exp1.run.output.clone(),
        counts: exp1.run.counts,
        dropped_overflows: [0, 0],
    };
    let result = mcf::parse_result(&outcome).expect("mcf must solve");
    mcf::verify_against_oracle(&instance, &result).expect("oracle agreement");

    (
        PaperRun {
            program: binary.program,
            exp1,
            exp2,
            result,
            instance,
        },
        [stats1, stats2],
    )
}

/// Run MCF unprofiled and return the result plus ground-truth counts
/// (for the overhead and tuning experiments).
pub fn run_cycles(
    instance: &Instance,
    layout: Layout,
    options: CompileOptions,
    config: MachineConfig,
) -> (McfResult, simsparc_machine::EventCounts) {
    let (result, outcome) =
        mcf::run_mcf(instance, layout, &McfParams::default(), options, config).expect("mcf run");
    (result, outcome.counts)
}
