//! Regenerate every table and figure of the paper's evaluation (§3).
//!
//! ```text
//! figures [--scale N] [--shards N] [--save DIR] [--stream DIR]
//!         [fig1|fig2|fig3|fig4|fig5|fig6|fig7|
//!          overhead|tuning|effectiveness|addrviews|all]
//! ```
//!
//! `--shards N` runs every view's aggregation on N threads (the
//! kernel's sharded path); the output is identical to serial.
//!
//! `--save DIR` writes the two collection experiments as bundles
//! (`DIR/exp1`, `DIR/exp2`) that `mp-er-print` can analyze standalone.
//!
//! `--stream DIR` collects through the bounded-memory streaming path
//! instead: events spill into `DIR/exp1.mpes` / `DIR/exp2.mpes` as the
//! runs progress, and every figure is generated from the experiments
//! *reloaded from those files*.
//!
//! `fig1..fig7` come from one pair of collection experiments (the
//! paper's two `collect` lines); `overhead` is the §2.1 `-xhwcprof`
//! cost; `tuning` is the §3.3 layout/page-size study; `effectiveness`
//! is the §3.2.5 backtracking analysis; `addrviews` are the §4
//! future-work views (segments/pages/cache lines/instances).

use mcf_bench::{
    run_cycles, run_paper_experiments, run_paper_experiments_streamed, Layout, PaperRun, Scale,
};
use memprof_core::analyze::Analysis;
use minic::CompileOptions;
use simsparc_machine::CounterEvent;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::paper();
    let mut what = "all".to_string();
    let mut save: Option<std::path::PathBuf> = None;
    let mut stream: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale.n_trips = args[i].parse().expect("bad --scale");
            }
            "--save" => {
                i += 1;
                save = Some(std::path::PathBuf::from(&args[i]));
            }
            "--stream" => {
                i += 1;
                stream = Some(std::path::PathBuf::from(&args[i]));
            }
            "--shards" => {
                i += 1;
                let n: usize = args[i].parse().expect("bad --shards");
                SHARDS.store(n.max(1), std::sync::atomic::Ordering::Relaxed);
            }
            w => what = w.to_string(),
        }
        i += 1;
    }

    let needs_experiments = matches!(
        what.as_str(),
        "all"
            | "fig1"
            | "fig2"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "effectiveness"
            | "addrviews"
    );

    let run = if needs_experiments {
        eprintln!(
            "collecting experiments (n_trips = {}, window = {})...",
            scale.n_trips, scale.window
        );
        let r = if let Some(dir) = &stream {
            let (r, stats) = run_paper_experiments_streamed(scale, dir, 8192);
            for (name, s) in [("exp1", &stats[0]), ("exp2", &stats[1])] {
                eprintln!(
                    "streamed {name}: {} hwc + {} clock events, {} stacks \
                     ({:.1}% intern hits), {} segments, peak {} buffered, {} bytes",
                    s.hwc_events,
                    s.clock_events,
                    s.distinct_stacks,
                    s.intern_hit_rate_pct(),
                    s.segments_spilled,
                    s.peak_buffered_events,
                    s.bytes_written
                );
            }
            r
        } else {
            run_paper_experiments(scale)
        };
        if let Some(dir) = &save {
            for (sub, exp) in [("exp1", &r.exp1), ("exp2", &r.exp2)] {
                let d = dir.join(sub);
                exp.save(&d).expect("save experiment");
                r.program
                    .image
                    .save(&d.join("image.txt"))
                    .expect("save image");
                r.program.syms.save(&d.join("syms.txt")).expect("save syms");
                eprintln!("saved {}", d.display());
            }
        }
        Some(r)
    } else {
        None
    };

    match what.as_str() {
        "fig1" => fig1(run.as_ref().unwrap()),
        "fig2" => fig2(run.as_ref().unwrap()),
        "fig3" => fig3(run.as_ref().unwrap()),
        "fig4" => fig4(run.as_ref().unwrap()),
        "fig5" => fig5(run.as_ref().unwrap()),
        "fig6" => fig6(run.as_ref().unwrap()),
        "fig7" => fig7(run.as_ref().unwrap()),
        "effectiveness" => effectiveness(run.as_ref().unwrap()),
        "addrviews" => addrviews(run.as_ref().unwrap()),
        "overhead" => overhead(scale),
        "tuning" => tuning(scale),
        "all" => {
            let run = run.as_ref().unwrap();
            fig1(run);
            fig2(run);
            fig3(run);
            fig4(run);
            fig5(run);
            fig6(run);
            fig7(run);
            effectiveness(run);
            addrviews(run);
            overhead(scale);
            tuning(scale);
        }
        other => {
            eprintln!("unknown figure `{other}`");
            std::process::exit(2);
        }
    }
}

/// Shard count for every aggregation in this run (`--shards N`).
static SHARDS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

fn shards() -> usize {
    SHARDS.load(std::sync::atomic::Ordering::Relaxed)
}

fn analysis(run: &PaperRun) -> Analysis<'_> {
    Analysis::with_shards(&[&run.exp1, &run.exp2], &run.program.syms, shards())
}

fn header(title: &str) {
    println!("\n======================================================================");
    println!("{title}");
    println!("======================================================================");
}

fn fig1(run: &PaperRun) {
    header("Figure 1: performance metrics for the <Total> function");
    let a = analysis(run);
    print!("{}", a.total_metrics().render());
    let c = &run.exp1.run.counts;
    println!(
        "(ground truth: {} cycles, {} instructions)",
        c.cycles, c.insts
    );
    let stall_pct = 100.0 * c.ec_stall_cycles as f64 / c.cycles as f64;
    let miss_rate = 100.0 * c.ec_read_miss as f64 / c.ec_ref as f64;
    println!(
        "E$ stall = {stall_pct:.1}% of run time (paper: 54%); \
         E$ read miss rate = {miss_rate:.1}% (paper: 6.4%)"
    );
    let dtlb_cost = 100.0 * (run.exp2.run.counts.dtlb_miss * 100) as f64 / c.cycles as f64;
    println!("DTLB misses at ~100 cycles each = {dtlb_cost:.1}% of run time (paper: ~5%)");
}

fn fig2(run: &PaperRun) {
    header("Figure 2: the function list");
    let a = analysis(run);
    let sort = a.user_cpu_col().unwrap_or(0);
    print!("{}", a.render_function_list(sort));
}

fn fig3(run: &PaperRun) {
    header("Figure 3: annotated source of the critical loop (refresh_potential)");
    let a = analysis(run);
    let text = a
        .render_annotated_source("refresh_potential")
        .expect("refresh_potential must exist");
    // Print only the hot region (the critical loop), like the paper.
    let lines: Vec<&str> = text.lines().collect();
    let hot: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("##"))
        .map(|(i, _)| i)
        .collect();
    if let (Some(&first), Some(&last)) = (hot.first(), hot.last()) {
        for l in &lines[first.saturating_sub(4)..(last + 5).min(lines.len())] {
            println!("{l}");
        }
    } else {
        print!("{text}");
    }
}

fn fig4(run: &PaperRun) {
    header("Figure 4: annotated disassembly of the critical loop");
    let a = analysis(run);
    let text = a
        .render_annotated_disasm("refresh_potential", &run.program.image.text)
        .expect("refresh_potential must exist");
    // The full function is long; print the hot window.
    let lines: Vec<&str> = text.lines().collect();
    let hot: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("##"))
        .map(|(i, _)| i)
        .collect();
    if let (Some(&first), Some(&last)) = (hot.first(), hot.last()) {
        for l in &lines[first.saturating_sub(6)..(last + 7).min(lines.len())] {
            println!("{l}");
        }
    } else {
        print!("{text}");
    }
}

fn fig5(run: &PaperRun) {
    header("Figure 5: PCs ranked by E$ Read Misses");
    let a = analysis(run);
    let col = a
        .col_by_event(CounterEvent::ECReadMiss)
        .expect("ecrm collected");
    print!("{}", a.render_pc_list(col, 17));
}

fn fig6(run: &PaperRun) {
    header("Figure 6: data objects ranked by E$ Stall Cycles");
    let a = analysis(run);
    let col = a
        .col_by_event(CounterEvent::ECStallCycles)
        .expect("ecstall collected");
    print!("{}", a.render_data_objects(col));
}

fn fig7(run: &PaperRun) {
    header("Figure 7: data-object structure:node expansion");
    let a = analysis(run);
    print!(
        "{}",
        a.render_struct_expansion("node")
            .expect("node struct known")
    );
    let report = a
        .instances("node", 512, 10)
        .expect("instance view available");
    println!(
        "\n{:.0}% of the {}-byte node objects straddle a 512-byte E$ line (paper: 28%)",
        report.straddle_fraction * 100.0,
        report.struct_size
    );
}

fn effectiveness(run: &PaperRun) {
    header("§3.2.5: apropos backtracking effectiveness");
    let a = analysis(run);
    println!(
        "{:<18} {:>8} {:>14} {:>17} {:>14}",
        "counter", "events", "unresolvable", "unascertainable", "effective"
    );
    for e in a.effectiveness() {
        println!(
            "{:<18} {:>8} {:>14} {:>17} {:>13.1}%",
            e.title, e.total, e.unresolvable, e.unascertainable, e.effectiveness_pct
        );
    }
    println!("(paper: >99% ecstall, ~100% ecrm, 100% dtlbm, ~94% ecref)");

    // Ground-truth scoring the paper could not do: of the validated
    // candidates, how many are the exact true trigger?
    for (name, exp) in [("exp1", &run.exp1), ("exp2", &run.exp2)] {
        let a1 = Analysis::new(&[exp], &run.program.syms);
        for col in a1.data_columns() {
            let mut validated = 0u64;
            let mut exact = 0u64;
            let b = &a1.batch;
            for i in 0..b.len() {
                if b.col[i] as usize != col {
                    continue;
                }
                if let memprof_core::analyze::Attribution::DataObject { pc, .. } = b.attribution(i)
                {
                    validated += 1;
                    let (xi, ei, _) = b.src_of(i);
                    if a1.experiments[xi].hwc_events[ei].truth_trigger_pc == pc {
                        exact += 1;
                    }
                }
            }
            if validated > 0 {
                println!(
                    "{name}/{}: {:.2}% of validated candidates are the exact true trigger \
                     (simulator ground truth)",
                    a1.columns[col].title,
                    100.0 * exact as f64 / validated as f64
                );
            }
        }
    }
}

fn addrviews(run: &PaperRun) {
    header("§4 (future work, implemented): address-space views");
    let a = analysis(run);

    println!("-- by memory segment (events with reconstructed EAs) --");
    for row in a.segments() {
        println!(
            "{:>8}: {:>8} events",
            row.segment.name(),
            row.samples.iter().sum::<u64>()
        );
    }

    println!("\n-- top 5 pages (8 KB) --");
    for row in a.pages(8192, 5) {
        println!(
            "{:#012x} ({}): {:>6} events",
            row.page_base,
            row.segment.name(),
            row.samples.iter().sum::<u64>()
        );
    }

    println!("\n-- top 5 E$ lines (512 B) --");
    for row in a.cache_lines(512, 5) {
        println!(
            "{:#012x}: {:>6} events",
            row.line_base,
            row.samples.iter().sum::<u64>()
        );
    }

    println!("\n-- hottest structure:node instances --");
    if let Some(report) = a.instances("node", 512, 5) {
        for (base, samples) in &report.instances {
            println!(
                "node @ {base:#012x}: {:>5} events",
                samples.iter().sum::<u64>()
            );
        }
        println!(
            "straddle fraction: {:.1}% of referenced {}-byte nodes cross an E$ line",
            report.straddle_fraction * 100.0,
            report.struct_size
        );
    }
}

fn overhead(scale: Scale) {
    header("§2.1: runtime overhead of -xhwcprof (paper: ~1.3%)");
    let inst = scale.instance();
    let config = mcf_bench::paper_machine_config();
    let (r_plain, c_plain) = run_cycles(
        &inst,
        Layout::Baseline,
        CompileOptions::default(),
        config.clone(),
    );
    let (r_prof, c_prof) = run_cycles(&inst, Layout::Baseline, CompileOptions::profiling(), config);
    assert_eq!(r_plain.cost, r_prof.cost, "results must agree");
    let pct = 100.0 * (c_prof.cycles as f64 - c_plain.cycles as f64) / c_plain.cycles as f64;
    println!("baseline build:   {:>14} cycles", c_plain.cycles);
    println!("-xhwcprof build:  {:>14} cycles", c_prof.cycles);
    println!("overhead: {pct:.2}% (paper: ~1.3%)");
    println!(
        "instructions: {} -> {} (+{:.2}% from nop padding / unfilled delay slots)",
        c_plain.insts,
        c_prof.insts,
        100.0 * (c_prof.insts as f64 - c_plain.insts as f64) / c_plain.insts as f64
    );
}

fn tuning(scale: Scale) {
    header("§3.3: performance improvements from the analysis");
    let inst = scale.instance();
    let base_cfg = mcf_bench::paper_machine_config();
    let large_cfg = base_cfg.clone().with_large_heap_pages();
    let opts = CompileOptions::default();

    let (r0, c0) = run_cycles(&inst, Layout::Baseline, opts, base_cfg.clone());
    let (r1, c1) = run_cycles(&inst, Layout::Tuned, opts, base_cfg);
    let (r2, c2) = run_cycles(&inst, Layout::Baseline, opts, large_cfg.clone());
    let (r3, c3) = run_cycles(&inst, Layout::Tuned, opts, large_cfg);
    for (r, name) in [
        (&r0, "baseline"),
        (&r1, "tuned layout"),
        (&r2, "large pages"),
        (&r3, "combined"),
    ] {
        assert_eq!(
            r.cost, r0.cost,
            "{name}: optimization must not change results"
        );
    }

    let speedup = |c: u64| 100.0 * (c0.cycles as f64 - c as f64) / c0.cycles as f64;
    println!(
        "{:<34} {:>14} {:>9} {:>12} {:>10}",
        "variant", "cycles", "speedup", "E$ rd miss", "DTLB miss"
    );
    println!(
        "{:<34} {:>14} {:>8.1}% {:>12} {:>10}",
        "baseline (120B node)", c0.cycles, 0.0, c0.ec_read_miss, c0.dtlb_miss
    );
    println!(
        "{:<34} {:>14} {:>8.1}% {:>12} {:>10}",
        "reordered+padded structs (paper 16.2%)",
        c1.cycles,
        speedup(c1.cycles),
        c1.ec_read_miss,
        c1.dtlb_miss
    );
    println!(
        "{:<34} {:>14} {:>8.1}% {:>12} {:>10}",
        "-xpagesize_heap=512k (paper 3.9%)",
        c2.cycles,
        speedup(c2.cycles),
        c2.ec_read_miss,
        c2.dtlb_miss
    );
    println!(
        "{:<34} {:>14} {:>8.1}% {:>12} {:>10}",
        "combined (paper 20.7%)",
        c3.cycles,
        speedup(c3.cycles),
        c3.ec_read_miss,
        c3.dtlb_miss
    );
}
