//! Property tests for the feedback-file contract between the
//! analyzer/driver and the compiler.
//!
//! Two invariants:
//!
//! 1. **Round trip** — `Feedback::from_text(fb.to_text()) == fb` for
//!    every combination of decision kinds (prefetch, reorder with and
//!    without pad, heapalign, pagesize_heap), including the numeric
//!    boundary values. A driver writes this file and a later
//!    recompilation re-reads it; any lossy corner silently changes
//!    measured deltas.
//! 2. **Semantic preservation** — recompiling a struct-heavy program
//!    under an arbitrary `reorder` (any member permutation, padded or
//!    not, with or without heap alignment) never changes the
//!    program's exit code or output. Layout is performance, not
//!    meaning.

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use minic::{compile_and_link_with_feedback, CompileOptions, Feedback, PrefetchHint, ReorderHint};
use simsparc_machine::{Machine, MachineConfig, NullHook};

/// Identifier-shaped name (the text form is whitespace- and
/// comma-delimited, so names must be identifiers — which is also all
/// the compiler accepts).
fn ident() -> BoxedStrategy<String> {
    (any::<u64>(), 0usize..8).prop_map(|(bits, extra)| {
        const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
        const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let mut bits = bits;
        let mut s = String::new();
        s.push(HEAD[(bits % HEAD.len() as u64) as usize] as char);
        for _ in 0..extra {
            bits /= 7;
            s.push(TAIL[(bits % TAIL.len() as u64) as usize] as char);
        }
        s
    })
}

fn prefetch_hint() -> BoxedStrategy<PrefetchHint> {
    let line = prop_oneof![Just(0u32), Just(u32::MAX), (0u32..100_000).prop_map(|l| l),];
    let lookahead = prop_oneof![
        Just(i64::MIN),
        Just(i64::MAX),
        Just(0i64),
        Just(-512i64),
        -4096i64..4096,
    ];
    (ident(), line, lookahead)
        .prop_map(|(function, line, lookahead)| PrefetchHint {
            function,
            line,
            lookahead,
        })
        .boxed()
}

fn reorder_hint() -> BoxedStrategy<ReorderHint> {
    let pad = prop_oneof![
        Just(None),
        Just(Some(1u64)),
        Just(Some(u64::MAX)),
        (1u64..4096).prop_map(Some),
    ];
    (ident(), proptest::collection::vec(ident(), 1..8), pad).prop_map(
        |(struct_name, mut order, pad_to)| {
            // The parser rejects repeated members; make the list a set.
            order.sort();
            order.dedup();
            ReorderHint {
                struct_name,
                order,
                pad_to,
            }
        },
    )
}

fn power_of_two() -> BoxedStrategy<u64> {
    prop_oneof![Just(0u32), Just(63u32), 0u32..64].prop_map(|shift| 1u64 << shift)
}

fn feedback() -> BoxedStrategy<Feedback> {
    (
        proptest::collection::vec(prefetch_hint(), 0..4),
        proptest::collection::vec(reorder_hint(), 0..3),
        prop_oneof![Just(None), power_of_two().prop_map(Some)],
        prop_oneof![Just(None), power_of_two().prop_map(Some)],
    )
        .prop_map(|(hints, mut reorders, heap_align, heap_page_bytes)| {
            // The parser rejects two reorders of the same struct.
            reorders.sort_by(|a, b| a.struct_name.cmp(&b.struct_name));
            reorders.dedup_by(|a, b| a.struct_name == b.struct_name);
            Feedback {
                hints,
                reorders,
                heap_align,
                heap_page_bytes,
            }
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn text_form_round_trips(fb in feedback()) {
        let text = fb.to_text();
        let back = Feedback::from_text(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\nfile:\n{text}")))?;
        prop_assert_eq!(back, fb, "text:\n{}", text);
    }
}

/// Deterministic boundary sweep on top of the random one: every
/// numeric field at its extremes survives one round trip.
#[test]
fn boundary_values_round_trip() {
    let fb = Feedback {
        hints: vec![
            PrefetchHint {
                function: "f".into(),
                line: 0,
                lookahead: i64::MIN,
            },
            PrefetchHint {
                function: "g".into(),
                line: u32::MAX,
                lookahead: i64::MAX,
            },
        ],
        reorders: vec![
            ReorderHint {
                struct_name: "a".into(),
                order: vec!["x".into()],
                pad_to: Some(1),
            },
            ReorderHint {
                struct_name: "b".into(),
                order: vec!["y".into(), "z".into()],
                pad_to: Some(u64::MAX),
            },
        ],
        heap_align: Some(1),
        heap_page_bytes: Some(1 << 63),
    };
    assert_eq!(Feedback::from_text(&fb.to_text()).unwrap(), fb);

    let fb = Feedback {
        heap_align: Some(1 << 63),
        heap_page_bytes: Some(1),
        ..Feedback::default()
    };
    assert_eq!(Feedback::from_text(&fb.to_text()).unwrap(), fb);
}

/// The pointer-chasing workload for the semantic oracle: builds a
/// linked structure on the heap, walks it twice (field reads and
/// writes through every member), and prints a digest. Any layout
/// change that altered addressing of even one member access would
/// change the digest or trap.
const ORACLE_SRC: &str = r#"
    extern char *malloc(long nbytes);
    struct item {
        long number;
        struct item *next;
        long potential;
        char mark;
        long flow;
        struct item *pred;
    };
    long main() {
        struct item *head = 0;
        struct item *p;
        struct item *q;
        long i;
        for (i = 0; i < 40; i = i + 1) {
            p = (struct item*)malloc(sizeof(struct item));
            p->number = i;
            p->potential = i * 17;
            p->mark = i % 3;
            p->flow = 0 - i;
            p->next = head;
            p->pred = 0;
            if (head) { head->pred = p; }
            head = p;
        }
        long s = 0;
        for (p = head; p; p = p->next) {
            s = s + p->potential + p->flow + p->mark;
            p->flow = s;
        }
        for (p = head; p; p = p->next) { q = p; }
        for (p = q; p; p = p->pred) { s = s + p->flow - p->number; }
        print_long(s);
        return s % 251;
    }
"#;

const ORACLE_MEMBERS: [&str; 6] = ["number", "next", "potential", "mark", "flow", "pred"];

fn run_oracle(fb: &Feedback) -> (i64, String) {
    let program =
        compile_and_link_with_feedback(&[("oracle.c", ORACLE_SRC)], CompileOptions::default(), fb)
            .unwrap_or_else(|e| panic!("compile failed under {:?}: {e}", fb));
    let mut m = Machine::new(MachineConfig::default());
    m.load(&program.image);
    let out = m
        .run(200_000_000, &mut NullHook)
        .unwrap_or_else(|e| panic!("run failed under {:?}: {e}", fb));
    (out.exit_code, out.output)
}

/// A permutation (or prefix) of the oracle struct's members plus a
/// legal pad/heapalign choice.
fn oracle_reorder() -> BoxedStrategy<Feedback> {
    let perm = BoxedStrategy::new(|rng: &mut TestRng| {
        let mut pool: Vec<&str> = ORACLE_MEMBERS.to_vec();
        let keep = 1 + (rng.next_u64() % ORACLE_MEMBERS.len() as u64) as usize;
        let mut order = Vec::new();
        for _ in 0..keep {
            let i = (rng.next_u64() % pool.len() as u64) as usize;
            order.push(pool.remove(i).to_string());
        }
        order
    });
    // struct item: 4 long + 2 ptr + char ≈ 48 bytes with padding;
    // pads are multiples of the 8-byte alignment at or above the
    // natural size, as sema requires.
    let pad = prop_oneof![Just(None), Just(Some(64u64)), Just(Some(128u64))];
    let align = prop_oneof![Just(None), Just(Some(32u64)), Just(Some(512u64))];
    (perm, pad, align)
        .prop_map(|(order, pad_to, heap_align)| Feedback {
            reorders: vec![ReorderHint {
                struct_name: "item".into(),
                order,
                pad_to,
            }],
            heap_align,
            ..Feedback::default()
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn reorder_preserves_program_semantics(fb in oracle_reorder()) {
        let baseline = run_oracle(&Feedback::default());
        let reordered = run_oracle(&fb);
        prop_assert_eq!(
            &reordered, &baseline,
            "layout change altered semantics under {:?}", fb
        );
    }
}
