//! # memprof-store — binary experiment store + multi-experiment aggregation
//!
//! The collector's text experiment directories (§2.2) are the format
//! of record: greppable, diffable, stable. This crate adds the layer
//! the paper's production tool had and the reproduction lacked —
//! archival and aggregation at scale:
//!
//! * a compact, versioned, checksummed **binary store** for a whole
//!   experiment (events, run summary, log, and the `syms.txt` /
//!   `image.txt` companions), losslessly convertible to and from the
//!   text directory ([`pack_dir`] / [`unpack_to_dir`]);
//! * a **streaming reader** ([`StoreFile`]) that decodes one
//!   counter's events at a time straight from the packed bytes;
//! * a **parallel aggregation engine** ([`aggregate`]) reducing many
//!   experiments to per-PC histograms with scoped threads, with
//!   results identical to the serial path;
//! * [`merge_experiments`] and [`diff_experiments`], which fold
//!   same-recipe runs together (feeding the ordinary analyzer views)
//!   and compare two runs function by function.
//!
//! Sources are addressed by [`ExperimentRef`], which accepts either a
//! text directory or a packed file and distinguishes them by the
//! store magic.

mod aggregate;
mod dict;
mod format;
pub mod pread;
mod reader;
mod stream;
mod varint;
mod writer;

use std::path::{Path, PathBuf};

use memprof_core::{CounterRequest, Experiment};

pub use aggregate::{
    aggregate, aggregate_exact, aggregate_streams, diff_aggregates, AggDiff, Aggregate, ColSpec,
    DiffRow,
};
pub use format::{fnv1a64, pack_dir, pack_experiment, unpack_to_dir, ATTACHMENT_FILES};
pub use reader::{ClockIter, HwcIter, StoreFile};
pub use stream::EventStream;
pub use writer::{validate_stream_prefix, SegmentWriter, StreamFile};

/// Everything that can go wrong opening, decoding, or combining
/// stores.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    /// Input ended mid-record.
    Truncated,
    /// The file does not start with the store magic.
    BadMagic,
    /// The file is a store, but a version this build does not read.
    BadVersion(u8),
    /// The body does not hash to the stored checksum.
    ChecksumMismatch,
    /// Structurally invalid content (with a static reason).
    Corrupt(&'static str),
    /// Structurally invalid event indexing, naming the first global
    /// index at which the contiguity check failed.
    CorruptIndex {
        why: &'static str,
        index: u64,
    },
    /// Experiments whose collection recipes do not line up.
    Incompatible(String),
    /// An event column could not be resolved against the combined
    /// column set during aggregation (mismatched counter recipes).
    ColumnMismatch(String),
    /// Any of the above, annotated with the file it happened on.
    /// Multi-segment operations (compaction, merges, windowed
    /// queries) touch many files; a bare "unexpected end of input"
    /// with no path is undebuggable there.
    At(PathBuf, Box<StoreError>),
}

impl StoreError {
    /// Annotate this error with the path it occurred on. Idempotent:
    /// an error that already carries a path keeps the innermost one
    /// (closest to the failing read).
    pub fn at(self, path: &Path) -> StoreError {
        match self {
            StoreError::At(p, e) => StoreError::At(p, e),
            other => StoreError::At(path.to_path_buf(), Box::new(other)),
        }
    }
}

/// Result adapter used by every file-opening entry point: wraps any
/// error with the offending path.
pub(crate) trait PathContext {
    fn path_context(self, path: &Path) -> Self;
}

impl<T> PathContext for Result<T, StoreError> {
    fn path_context(self, path: &Path) -> Self {
        self.map_err(|e| e.at(path))
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "{e}"),
            StoreError::Truncated => write!(f, "unexpected end of input"),
            StoreError::BadMagic => write!(f, "not a packed experiment store (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::ChecksumMismatch => write!(f, "checksum mismatch (file corrupted?)"),
            StoreError::Corrupt(why) => write!(f, "corrupt store: {why}"),
            StoreError::CorruptIndex { why, index } => {
                write!(f, "corrupt store: {why} (first offending index {index})")
            }
            StoreError::Incompatible(why) => write!(f, "incompatible experiments: {why}"),
            StoreError::ColumnMismatch(why) => write!(f, "column mismatch: {why}"),
            StoreError::At(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// A reference to an experiment on disk, in either representation.
#[derive(Clone, Debug)]
pub enum ExperimentRef {
    /// A text experiment directory written by `mp-collect`.
    TextDir(PathBuf),
    /// A packed store file written by `mp-store pack`.
    Packed(PathBuf),
}

impl ExperimentRef {
    /// Identify what `path` points at: directories are text
    /// experiments, files are sniffed for the store magic.
    pub fn open(path: &Path) -> Result<ExperimentRef, StoreError> {
        if path.is_dir() {
            return Ok(ExperimentRef::TextDir(path.to_path_buf()));
        }
        let open = || -> Result<ExperimentRef, StoreError> {
            let mut magic = [0u8; 4];
            let mut f = std::fs::File::open(path)?;
            std::io::Read::read_exact(&mut f, &mut magic).map_err(|_| StoreError::Truncated)?;
            if magic == format::MAGIC {
                Ok(ExperimentRef::Packed(path.to_path_buf()))
            } else {
                Err(StoreError::BadMagic)
            }
        };
        open().path_context(path)
    }

    pub fn path(&self) -> &Path {
        match self {
            ExperimentRef::TextDir(p) | ExperimentRef::Packed(p) => p,
        }
    }

    /// Load the full experiment, whichever representation it is in.
    pub fn load(&self) -> Result<Experiment, StoreError> {
        match self {
            ExperimentRef::TextDir(dir) => Experiment::load(dir)
                .map_err(StoreError::Io)
                .path_context(dir),
            ExperimentRef::Packed(file) => match open_packed(file)? {
                PackedFile::V1(store) => store.to_experiment().path_context(file),
                PackedFile::V2(stream) => stream.to_experiment().path_context(file),
            },
        }
    }

    /// Load the symbol table that travels with the experiment
    /// (`syms.txt` beside a text directory, the attachment inside a
    /// packed store or stream file), if present.
    pub fn load_syms(&self) -> Option<minic::SymbolTable> {
        match self {
            ExperimentRef::TextDir(dir) => minic::SymbolTable::load(&dir.join("syms.txt")).ok(),
            ExperimentRef::Packed(file) => {
                let attachments = load_attachments(file).ok()?;
                let contents = attachments
                    .iter()
                    .find(|(n, _)| n == "syms.txt")
                    .map(|(_, c)| c)?;
                // SymbolTable's loader is path-based; round-trip the
                // attachment through a scratch file.
                let tmp = scratch_path("syms");
                std::fs::write(&tmp, contents).ok()?;
                let syms = minic::SymbolTable::load(&tmp).ok();
                std::fs::remove_file(&tmp).ok();
                syms
            }
        }
    }
}

/// A packed file opened in whichever `MPES` version it carries.
pub(crate) enum PackedFile {
    /// Version 1: one-shot archival image ([`StoreFile`]).
    V1(StoreFile),
    /// Version 2: incrementally written stream ([`StreamFile`]).
    V2(StreamFile),
}

/// Open a packed file, dispatching on the version byte: the two
/// formats share the magic, so every consumer of "a packed
/// experiment" goes through here.
pub(crate) fn open_packed(path: &Path) -> Result<PackedFile, StoreError> {
    let open = || -> Result<PackedFile, StoreError> {
        let bytes = pread::read_file_pooled(path)?;
        if bytes.get(4) == Some(&writer::STREAM_VERSION) {
            // The stream parser decodes everything into owned
            // structures, so the pooled image is released (back to
            // the pool) as soon as parsing finishes.
            Ok(PackedFile::V2(StreamFile::parse(&bytes)?))
        } else {
            Ok(PackedFile::V1(StoreFile::from_buf(bytes)?))
        }
    };
    open().path_context(path)
}

/// The auxiliary text files (`syms.txt`, `image.txt`) carried by a
/// packed store or stream file.
pub fn load_attachments(path: &Path) -> Result<Vec<(String, String)>, StoreError> {
    Ok(match open_packed(path)? {
        PackedFile::V1(store) => store.attachments().to_vec(),
        PackedFile::V2(stream) => stream.attachments().to_vec(),
    })
}

/// The auxiliary files to carry into a packed store, from whichever
/// input has them — the first reference with any attachment wins.
/// Every producer of merged stores (`mp-store merge`, the `mp-serve`
/// compactor) goes through here, so a store compacted by the daemon
/// is byte-identical to one merged offline from the same inputs.
pub fn collect_attachments(refs: &[ExperimentRef]) -> Vec<(String, String)> {
    for r in refs {
        let mut found = Vec::new();
        for name in ATTACHMENT_FILES {
            let contents = match r {
                ExperimentRef::TextDir(dir) => std::fs::read_to_string(dir.join(name)).ok(),
                // Version-agnostic: v1 packed stores and v2 stream
                // files both carry attachments.
                ExperimentRef::Packed(file) => load_attachments(file)
                    .ok()
                    .and_then(|atts| atts.into_iter().find(|(n, _)| n == name).map(|(_, c)| c)),
            };
            if let Some(c) = contents {
                found.push((name.to_string(), c));
            }
        }
        if !found.is_empty() {
            return found;
        }
    }
    Vec::new()
}

fn scratch_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "memprof_store_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Check that two collection-recipe headers line up — the
/// precondition for folding their events together. Works on header
/// fields alone, so a packed store never needs decoding to be
/// checked.
fn check_compatible_headers(
    counters_a: &[CounterRequest],
    period_a: Option<u64>,
    hz_a: u64,
    counters_b: &[CounterRequest],
    period_b: Option<u64>,
    hz_b: u64,
) -> Result<(), StoreError> {
    if counters_a != counters_b {
        return Err(StoreError::Incompatible(format!(
            "counter sets differ: {counters_a:?} vs {counters_b:?}"
        )));
    }
    if period_a != period_b {
        return Err(StoreError::Incompatible(format!(
            "clock profiling differs: {period_a:?} vs {period_b:?}"
        )));
    }
    if hz_a != hz_b {
        return Err(StoreError::Incompatible(format!(
            "clock rates differ: {hz_a} vs {hz_b}"
        )));
    }
    Ok(())
}

/// Check that two experiments were collected with the same recipe.
fn check_compatible(a: &Experiment, b: &Experiment) -> Result<(), StoreError> {
    check_compatible_headers(
        &a.counters,
        a.clock_period,
        a.run.clock_hz,
        &b.counters,
        b.clock_period,
        b.run.clock_hz,
    )
}

/// Merge already-loaded experiments collected with the same recipe
/// into one. Events concatenate in argument order (per-experiment
/// order is preserved), dropped-overflow and ground-truth counts sum,
/// and the logs concatenate under `merged from` markers. The result
/// is an ordinary [`Experiment`], so every analyzer view works on it
/// unchanged, and per-function / per-data-object totals equal the
/// element-wise sum of the inputs' individual analyses.
pub fn merge_loaded(exps: &[Experiment]) -> Result<Experiment, StoreError> {
    let first = exps
        .first()
        .ok_or(StoreError::Incompatible("nothing to merge".to_string()))?;
    for other in &exps[1..] {
        check_compatible(first, other)?;
    }
    let mut merged = Experiment {
        counters: first.counters.clone(),
        clock_period: first.clock_period,
        ..Experiment::default()
    };
    merged.run.clock_hz = first.run.clock_hz;
    merged.run.exit_code = first.run.exit_code;
    merged.run.dropped = vec![0; first.counters.len()];
    for (i, exp) in exps.iter().enumerate() {
        merged.hwc_events.extend(exp.hwc_events.iter().cloned());
        merged.clock_events.extend(exp.clock_events.iter().cloned());
        merged.run.output.push_str(&exp.run.output);
        for (dst, src) in merged.run.dropped.iter_mut().zip(&exp.run.dropped) {
            *dst += src;
        }
        let (c, e) = (&mut merged.run.counts, &exp.run.counts);
        c.cycles += e.cycles;
        c.insts += e.insts;
        c.ic_miss += e.ic_miss;
        c.dc_read_miss += e.dc_read_miss;
        c.dtlb_miss += e.dtlb_miss;
        c.ec_ref += e.ec_ref;
        c.ec_read_miss += e.ec_read_miss;
        c.ec_stall_cycles += e.ec_stall_cycles;
        c.loads += e.loads;
        c.stores += e.stores;
        merged.log.push(format!("merged from experiment {i}"));
        merged.log.extend(exp.log.iter().cloned());
    }
    Ok(merged)
}

/// Load and merge a set of experiment references (text directories or
/// packed stores, freely mixed). Inputs decode in parallel — all
/// per-event work lives in that phase — and the fold itself moves the
/// decoded events, so its cost is proportional to the number of
/// inputs, not events. The result is identical to loading every input
/// and calling [`merge_loaded`].
pub fn merge_experiments(refs: &[ExperimentRef]) -> Result<Experiment, StoreError> {
    merge_experiments_sharded(refs, 0)
}

/// [`merge_experiments`] with the inputs decoded `shards` at a time
/// on scoped threads (0 = one per available core; requests beyond the
/// hardware are capped). The merge itself — and its output — is
/// identical at every shard count.
pub fn merge_experiments_sharded(
    refs: &[ExperimentRef],
    shards: usize,
) -> Result<Experiment, StoreError> {
    dict::merge_inputs(dict::load_inputs(refs, shards)?)
}

/// [`merge_experiments_sharded`], seeded with experiments the caller
/// already holds in memory. The seeds fold in first, then the decoded
/// `refs`, exactly as if every seed had been packed, referenced, and
/// re-loaded — so an incremental compactor can fold fresh segments
/// into last round's merged window without re-reading its packed
/// image.
pub fn merge_experiments_seeded(
    seeds: Vec<Experiment>,
    refs: &[ExperimentRef],
    shards: usize,
) -> Result<Experiment, StoreError> {
    let mut inputs = seeds;
    inputs.extend(dict::load_inputs(refs, shards)?);
    dict::merge_inputs(inputs)
}

/// Compare two experiments collected with the same recipe: aggregate
/// each side over `shards` shards (0 = one per available core) and
/// diff the per-PC histograms. Render the result with
/// [`AggDiff::render`] or, with a symbol table,
/// [`AggDiff::render_by_function`].
pub fn diff_experiments(
    a: &ExperimentRef,
    b: &ExperimentRef,
    shards: usize,
) -> Result<AggDiff, StoreError> {
    let sa = EventStream::open(a)?;
    let sb = EventStream::open(b)?;
    // Compatibility is a header property; packed stores are checked
    // (and then aggregated) without decoding a full experiment.
    check_compatible_headers(
        sa.counters(),
        sa.clock_period(),
        sa.clock_hz(),
        sb.counters(),
        sb.clock_period(),
        sb.clock_hz(),
    )?;
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (agg_a, agg_b) = if hw > 1 {
        // The two sides are independent; aggregate them concurrently.
        std::thread::scope(|scope| {
            let ha = scope.spawn(|| aggregate_streams(std::slice::from_ref(&sa), shards));
            let hb = scope.spawn(|| aggregate_streams(std::slice::from_ref(&sb), shards));
            (ha.join().unwrap(), hb.join().unwrap())
        })
    } else {
        (
            aggregate_streams(std::slice::from_ref(&sa), shards),
            aggregate_streams(std::slice::from_ref(&sb), shards),
        )
    };
    diff_aggregates(&agg_a?, &agg_b?)
}

/// Convenience for tools: aggregate whatever `refs` point at,
/// streaming packed stores rather than loading them.
pub fn aggregate_refs(refs: &[ExperimentRef], shards: usize) -> Result<Aggregate, StoreError> {
    let streams = refs
        .iter()
        .map(EventStream::open)
        .collect::<Result<Vec<EventStream>, StoreError>>()?;
    aggregate_streams(&streams, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memprof_core::{ClockEvent, CounterRequest, HwcEvent};
    use simsparc_machine::CounterEvent;

    pub(crate) fn sample_experiment() -> Experiment {
        Experiment {
            counters: vec![
                CounterRequest {
                    event: CounterEvent::ECStallCycles,
                    backtrack: true,
                    interval: 1009,
                },
                CounterRequest {
                    event: CounterEvent::DTLBMiss,
                    backtrack: false,
                    interval: 53,
                },
            ],
            clock_period: Some(10007),
            hwc_events: vec![
                HwcEvent {
                    counter: 0,
                    delivered_pc: 0x1000_31b8,
                    candidate_pc: Some(0x1000_31b0),
                    ea: Some(0x4000_0038),
                    callstack: vec![0x1000_0010, 0x1000_0200],
                    truth_trigger_pc: 0x1000_31b0,
                    truth_ea: Some(0x4000_0038),
                    truth_skid: 2,
                },
                HwcEvent {
                    counter: 1,
                    delivered_pc: 0x1000_31d8,
                    candidate_pc: None,
                    ea: None,
                    callstack: vec![],
                    truth_trigger_pc: 0x1000_31d4,
                    truth_ea: None,
                    truth_skid: 1,
                },
                HwcEvent {
                    counter: 0,
                    delivered_pc: 0x1000_31b8,
                    candidate_pc: Some(0x1000_31b0),
                    ea: Some(0x4000_0110),
                    callstack: vec![0x1000_0010],
                    truth_trigger_pc: 0x1000_31b4,
                    truth_ea: Some(0x4000_0110),
                    truth_skid: 1,
                },
            ],
            clock_events: vec![
                ClockEvent {
                    pc: 0x1000_31d8,
                    callstack: vec![0x1000_0010],
                },
                ClockEvent {
                    pc: 0x1000_31b8,
                    callstack: vec![],
                },
            ],
            run: memprof_core::RunInfo {
                exit_code: 0,
                output: "cost 42\n".to_string(),
                counts: simsparc_machine::EventCounts {
                    cycles: 1_000_000,
                    insts: 400_000,
                    ec_stall_cycles: 250_000,
                    dtlb_miss: 1_200,
                    ..Default::default()
                },
                clock_hz: 900_000_000,
                dropped: vec![3, 0],
            },
            log: vec!["0 collect start".to_string(), "1000000 exit 0".to_string()],
        }
    }

    #[test]
    fn pack_round_trips_losslessly() {
        let exp = sample_experiment();
        let attachments = vec![("syms.txt".to_string(), "module m 1 1\n".to_string())];
        let bytes = pack_experiment(&exp, &attachments);
        let store = StoreFile::from_bytes(bytes).unwrap();
        assert_eq!(store.attachments(), &attachments[..]);
        let back = store.to_experiment().unwrap();
        assert_eq!(back.counters, exp.counters);
        assert_eq!(back.clock_period, exp.clock_period);
        assert_eq!(back.hwc_events, exp.hwc_events);
        assert_eq!(back.clock_events, exp.clock_events);
        assert_eq!(back.run, exp.run);
        assert_eq!(back.log, exp.log);
    }

    #[test]
    fn packed_is_smaller_than_text() {
        let exp = sample_experiment();
        let dir = scratch_path("size");
        exp.save(&dir).unwrap();
        let text_size: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum();
        std::fs::remove_dir_all(&dir).ok();
        let packed = pack_experiment(&exp, &[]);
        assert!(
            (packed.len() as u64) < text_size,
            "packed {} vs text {text_size}",
            packed.len()
        );
    }

    #[test]
    fn streaming_reader_sees_per_counter_events_in_order() {
        let exp = sample_experiment();
        let store = StoreFile::from_bytes(pack_experiment(&exp, &[])).unwrap();
        assert_eq!(store.hwc_count(0), 2);
        assert_eq!(store.hwc_count(1), 1);
        assert_eq!(store.clock_count(), 2);
        let evs: Vec<(u64, HwcEvent)> = store.hwc_events(0).collect::<Result<_, _>>().unwrap();
        assert_eq!(evs[0].0, 0);
        assert_eq!(evs[1].0, 2);
        assert_eq!(evs[0].1, exp.hwc_events[0]);
        assert_eq!(evs[1].1, exp.hwc_events[2]);
    }

    #[test]
    fn merge_requires_matching_recipes() {
        let a = sample_experiment();
        let mut b = sample_experiment();
        b.counters[0].interval = 997;
        assert!(matches!(
            merge_loaded(&[a, b]),
            Err(StoreError::Incompatible(_))
        ));
        assert!(matches!(
            merge_loaded(&[]),
            Err(StoreError::Incompatible(_))
        ));
    }

    #[test]
    fn merge_concatenates_and_sums() {
        let a = sample_experiment();
        let b = sample_experiment();
        let m = merge_loaded(&[a.clone(), b]).unwrap();
        assert_eq!(m.hwc_events.len(), 2 * a.hwc_events.len());
        assert_eq!(m.clock_events.len(), 2 * a.clock_events.len());
        assert_eq!(m.run.counts.cycles, 2 * a.run.counts.cycles);
        assert_eq!(m.run.dropped, vec![6, 0]);
    }

    #[test]
    fn dict_merge_matches_load_then_merge_loaded() {
        use memprof_core::{CallstackTable, CollectSink as _, PackedClockEvent, PackedHwcEvent};
        let exp = sample_experiment();

        // Input 1: text directory.
        let dir = scratch_path("dictmerge_text");
        exp.save(&dir).unwrap();

        // Input 2: v1 packed store.
        let packed = scratch_path("dictmerge_v1");
        std::fs::write(&packed, pack_experiment(&exp, &[])).unwrap();

        // Input 3: v2 stream file carrying the same events, stacks
        // pre-interned the way a streaming collector writes them.
        let mut w = SegmentWriter::new(Vec::new());
        w.begin(&exp.counters, exp.clock_period, exp.run.clock_hz)
            .unwrap();
        let mut table = CallstackTable::new();
        let hwc: Vec<PackedHwcEvent> = exp
            .hwc_events
            .iter()
            .map(|ev| PackedHwcEvent {
                counter: ev.counter as u32,
                delivered_pc: ev.delivered_pc,
                candidate_pc: ev.candidate_pc,
                ea: ev.ea,
                stack: table.intern(&ev.callstack),
                truth_trigger_pc: ev.truth_trigger_pc,
                truth_ea: ev.truth_ea,
                truth_skid: ev.truth_skid,
            })
            .collect();
        let clock: Vec<PackedClockEvent> = exp
            .clock_events
            .iter()
            .map(|ev| PackedClockEvent {
                pc: ev.pc,
                stack: table.intern(&ev.callstack),
            })
            .collect();
        w.stacks(table.stacks_from(0)).unwrap();
        w.hwc_segment(&hwc).unwrap();
        w.clock_segment(&clock).unwrap();
        w.finish(&exp.run, &exp.log).unwrap();
        let stream = scratch_path("dictmerge_v2");
        std::fs::write(&stream, w.into_inner()).unwrap();

        let refs = vec![
            ExperimentRef::TextDir(dir.clone()),
            ExperimentRef::Packed(packed.clone()),
            ExperimentRef::Packed(stream.clone()),
        ];
        let loaded: Vec<Experiment> = refs.iter().map(|r| r.load().unwrap()).collect();
        let oracle = merge_loaded(&loaded).unwrap();
        for shards in [1, 3] {
            let merged = merge_experiments_sharded(&refs, shards).unwrap();
            assert_eq!(merged.counters, oracle.counters);
            assert_eq!(merged.clock_period, oracle.clock_period);
            assert_eq!(merged.hwc_events, oracle.hwc_events);
            assert_eq!(merged.clock_events, oracle.clock_events);
            assert_eq!(merged.run, oracle.run);
            assert_eq!(merged.log, oracle.log);
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&packed).ok();
        std::fs::remove_file(&stream).ok();
    }

    #[test]
    fn serial_and_parallel_aggregation_agree() {
        let a = sample_experiment();
        let b = sample_experiment();
        let views: Vec<&Experiment> = vec![&a, &b];
        let serial = aggregate(&views, 1).unwrap();
        for shards in [2, 3, 8] {
            // `aggregate` may legitimately cap tiny inputs back to the
            // serial path; the exact variant pins the sharded span
            // fill itself on any host.
            for par in [
                aggregate(&views, shards).unwrap(),
                aggregate_exact(&views, shards).unwrap(),
            ] {
                assert_eq!(par.columns, serial.columns);
                assert_eq!(par.pc_samples, serial.pc_samples);
                assert_eq!(par.totals, serial.totals);
                assert_eq!(par.render(), serial.render());
            }
        }
    }

    #[test]
    fn diff_reports_moved_pcs_only() {
        let a = sample_experiment();
        let mut b = sample_experiment();
        b.hwc_events.push(HwcEvent {
            counter: 1,
            delivered_pc: 0x1000_4000,
            candidate_pc: None,
            ea: None,
            callstack: vec![],
            truth_trigger_pc: 0x1000_4000,
            truth_ea: None,
            truth_skid: 0,
        });
        let agg_a = aggregate(&[&a], 1).unwrap();
        let agg_b = aggregate(&[&b], 1).unwrap();
        let diff = diff_aggregates(&agg_a, &agg_b).unwrap();
        assert_eq!(diff.rows.len(), 1);
        assert_eq!(diff.rows[0].pc, 0x1000_4000);
        // Identical sides diff to nothing.
        let same = diff_aggregates(&agg_a, &agg_a).unwrap();
        assert!(same.rows.is_empty());
    }
}
