//! Scale probe: run MCF at a given size and print the function-level
//! profile shape, for tuning the figure-scale parameters against the
//! paper's Figure 2.

use mcf_bench::{run_paper_experiments, Scale};
use memprof_core::analyze::Analysis;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let scale = Scale {
        n_trips: n,
        window: 60,
        seed: 181,
    };
    let t0 = std::time::Instant::now();
    let run = run_paper_experiments(scale);
    eprintln!("wall time: {:?}", t0.elapsed());
    eprintln!(
        "insts: {} cycles: {} ecrm: {} ecref: {} dtlbm: {} stall: {} ({}% of cycles)",
        run.exp1.run.counts.insts,
        run.exp1.run.counts.cycles,
        run.exp1.run.counts.ec_read_miss,
        run.exp1.run.counts.ec_ref,
        run.exp2.run.counts.dtlb_miss,
        run.exp1.run.counts.ec_stall_cycles,
        100 * run.exp1.run.counts.ec_stall_cycles / run.exp1.run.counts.cycles
    );
    eprintln!("result: {:?}", run.result);

    let analysis = Analysis::new(&[&run.exp1, &run.exp2], &run.program.syms);
    println!("{}", analysis.render_function_list(0));
    println!("{}", analysis.render_data_objects(2));
    for e in analysis.effectiveness() {
        println!(
            "{}: {:.1}% effective ({} events, {} unresolvable, {} unascertainable)",
            e.title, e.effectiveness_pct, e.total, e.unresolvable, e.unascertainable
        );
    }
}
