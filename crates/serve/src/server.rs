//! The `mp-serve` daemon: accept collector sessions and queries on a
//! TCP listener, land raw segments, and run background compaction.
//!
//! Threading model: one accept loop, one handler thread per
//! connection, one optional compactor thread. Ingest streaming is
//! lock-free (each session appends to its own staging file); a single
//! tier lock serializes the operations that change or read the tier
//! layout as a whole — sealing a session into tier 0, compaction, and
//! queries — so a query never observes a window mid-compaction.
//!
//! Session lifecycle:
//!
//! ```text
//! HELLO ──► ingest/WINDOW@ID.part created, HELLO_OK(ID) sent
//! CHUNK*──► frame payloads appended verbatim (MPES v2 bytes)
//! END  ───► fsync, seal to raw/WINDOW/ID.mpes, END_OK sent
//! ```
//!
//! Session ids are `SEQ-NAME` with a zero-padded arrival sequence
//! number. The counter is seeded at startup from the highest sequence
//! recorded anywhere on disk (staging files, raw segments, compaction
//! manifests), so a restarted daemon never hands out an id that an
//! earlier boot already used — sealing refuses to overwrite an
//! existing raw segment as a second line of defense. Startup also
//! sweeps `ingest/` for staging files a crashed boot left behind,
//! sealing any readable prefix into its window (the label is embedded
//! in the staging file name) and discarding the rest.
//!
//! A disconnect before END — even mid-frame — still seals whatever
//! prefix arrived, as long as it parses as an MPES stream: the chunk
//! format is self-delimiting and checksummed, so a damaged tail is
//! detected and dropped by [`StreamFile`] exactly as for a local
//! crash. A prefix too short to parse (lost before the preamble
//! landed) is discarded.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use memprof_store::{validate_stream_prefix, StoreError};

use crate::compact::{compact_all, CompactCache};
use crate::query::{answer, QueryOutcome};
use crate::store::{valid_label, StoreDirs};
use crate::wire::{
    parse_hello, read_frame, write_frame, WireError, TAG_CHUNK, TAG_END, TAG_END_OK, TAG_ERROR,
    TAG_HELLO, TAG_HELLO_OK, TAG_QUERY, TAG_RESULT,
};

/// Daemon configuration.
#[derive(Default)]
pub struct ServerConfig {
    /// Seconds between background compaction passes; `None` compacts
    /// only on explicit `compact` queries.
    pub compact_secs: Option<u64>,
    /// Max windows whose merged experiments stay cached between
    /// compaction passes; `None` uses
    /// [`CompactCache::DEFAULT_CACHED_WINDOWS`], `Some(0)` disables
    /// the cache (every pass re-reads the packed store).
    pub cache_windows: Option<usize>,
}

struct Shared {
    dirs: StoreDirs,
    /// Serializes tier mutations and reads (seal, compact, query),
    /// and carries the per-window merge results that make repeat
    /// compaction incremental.
    tiers: Mutex<CompactCache>,
    /// Arrival sequence for session ids; zero-padded into the file
    /// name so sorted-order merges are deterministic.
    seq: AtomicU64,
    stop: AtomicBool,
}

/// A running daemon; dropping the handle does not stop it — call
/// [`Server::shutdown`] (or send a `shutdown` query).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    compact_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `listen` (e.g. `127.0.0.1:0`) over `data` and start
    /// serving. Returns once the listener is accepting.
    pub fn start(listen: &str, data: &Path, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let dirs = StoreDirs::create(data)?;
        // Seal (or discard) staging files a crashed boot left behind,
        // then seed the session counter above every sequence number
        // on disk so restarts never reuse an id.
        recover_ingest(&dirs);
        let next_seq = dirs.max_existing_seq().saturating_add(1);
        let shared = Arc::new(Shared {
            dirs,
            tiers: Mutex::new(CompactCache::with_cap(
                config
                    .cache_windows
                    .unwrap_or(CompactCache::DEFAULT_CACHED_WINDOWS),
            )),
            seq: AtomicU64::new(next_seq),
            stop: AtomicBool::new(false),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    if let Err(e) = handle_connection(&conn_shared, stream) {
                        eprintln!("mp-serve: connection error: {e}");
                    }
                });
            }
        });

        let compact_thread = config.compact_secs.map(|secs| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let period = Duration::from_secs(secs.max(1));
                let mut last = Instant::now();
                while !shared.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(100));
                    if last.elapsed() >= period {
                        last = Instant::now();
                        let mut cache = shared.tiers.lock().unwrap();
                        match compact_all(&shared.dirs, &mut cache) {
                            Ok(report) if !report.windows.is_empty() => {
                                eprint!("mp-serve: {}", report.render());
                            }
                            Ok(_) => {}
                            Err(e) => eprintln!("mp-serve: compaction failed: {e}"),
                        }
                    }
                }
            })
        });

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            compact_thread: Some(compact_thread).flatten(),
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the daemon and wait for its threads.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.compact_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the daemon is asked to stop (via a `shutdown`
    /// query), then join its threads.
    pub fn run(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.compact_thread.take() {
            let _ = t.join();
        }
    }
}

/// Dispatch a fresh connection on its first frame: HELLO starts a
/// collector session, QUERY answers one query.
fn handle_connection(shared: &Shared, mut stream: TcpStream) -> std::io::Result<()> {
    let first = match read_frame(&mut stream) {
        Ok(f) => f,
        // Port probes and shutdown wake-ups close without a frame.
        Err(WireError::Closed) | Err(WireError::TruncatedFrame { .. }) => return Ok(()),
        Err(WireError::Io(e)) => return Err(e),
        Err(e) => {
            let _ = write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes());
            return Ok(());
        }
    };
    match first.tag {
        TAG_HELLO => handle_session(shared, stream, &first.payload),
        TAG_QUERY => handle_query(shared, stream, &first.payload),
        tag => {
            let msg = format!("expected HELLO or QUERY, got tag {tag}");
            let _ = write_frame(&mut stream, TAG_ERROR, msg.as_bytes());
            Ok(())
        }
    }
}

/// Sanitize a collector-supplied session name for use in a file name.
fn clean_name(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .take(40)
        .collect();
    if cleaned.is_empty() {
        "session".to_string()
    } else {
        cleaned
    }
}

fn handle_session(shared: &Shared, mut stream: TcpStream, hello: &[u8]) -> std::io::Result<()> {
    let (name, window) = match parse_hello(hello) {
        Ok(parts) => parts,
        Err(e) => {
            let _ = write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes());
            return Ok(());
        }
    };
    if !valid_label(&window) {
        let msg = format!("bad window label `{window}`");
        let _ = write_frame(&mut stream, TAG_ERROR, msg.as_bytes());
        return Ok(());
    }
    let seq = shared.seq.fetch_add(1, Ordering::SeqCst);
    // Zero-padded wide enough that lexicographic file-name order (the
    // canonical merge order) matches arrival order for any realistic
    // session count.
    let session = format!("{seq:010}-{}", clean_name(&name));
    let part = shared.dirs.ingest_path(&window, &session);
    let mut file = std::fs::File::create(&part)?;
    write_frame(&mut stream, TAG_HELLO_OK, session.as_bytes())?;

    // Ingest until END or disconnect. Every CHUNK payload is MPES v2
    // bytes, appended verbatim.
    let mut clean_end = false;
    loop {
        match read_frame(&mut stream) {
            Ok(f) if f.tag == TAG_CHUNK => file.write_all(&f.payload)?,
            Ok(f) if f.tag == TAG_END => {
                clean_end = true;
                break;
            }
            Ok(f) => {
                let msg = format!("unexpected tag {} in session", f.tag);
                let _ = write_frame(&mut stream, TAG_ERROR, msg.as_bytes());
                break;
            }
            Err(WireError::Closed) => break,
            Err(WireError::TruncatedFrame { tag, partial }) => {
                // The connection died mid-frame. Land the partial
                // chunk bytes: the MPES checksums make the damaged
                // tail detectable, and everything before it readable.
                if tag == TAG_CHUNK {
                    file.write_all(&partial)?;
                }
                break;
            }
            Err(WireError::Protocol(why)) => {
                let _ = write_frame(&mut stream, TAG_ERROR, why.as_bytes());
                break;
            }
            Err(WireError::Io(e)) => {
                eprintln!("mp-serve: session {session}: {e}");
                break;
            }
        }
    }
    file.sync_all()?;
    drop(file);

    match seal_session(shared, &part, &window, &session) {
        Ok(true) => {
            eprintln!("mp-serve: sealed {session} into window {window}");
            if clean_end {
                write_frame(&mut stream, TAG_END_OK, b"")?;
            }
        }
        Ok(false) => {
            eprintln!("mp-serve: discarded {session}: no parseable prefix");
        }
        Err(e) => {
            eprintln!("mp-serve: cannot seal {session}: {e}");
            if clean_end {
                let _ = write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes());
            }
        }
    }
    Ok(())
}

/// Move a finished staging file into its window's tier-0 directory.
/// Returns `Ok(false)` (and deletes the staging file) if the landed
/// bytes are too short to parse as an MPES stream — nothing usable
/// arrived. The verdict comes from [`validate_stream_prefix`], which
/// reads only the stream preamble and header chunk through positioned
/// reads — a full parse can only fail on those, so sealing a large
/// session no longer buffers its whole image just to decide yes/no.
/// Callers serialize against compaction (the tiers lock); the startup
/// recovery sweep runs before any other thread exists.
fn seal_part(
    dirs: &StoreDirs,
    part: &Path,
    window: &str,
    session: &str,
) -> Result<bool, StoreError> {
    if !validate_stream_prefix(part).map_err(|e| e.at(part))? {
        let _ = std::fs::remove_file(part);
        return Ok(false);
    }
    let raw_dir = dirs.raw_dir(window);
    std::fs::create_dir_all(&raw_dir).map_err(|e| StoreError::Io(e).at(&raw_dir))?;
    let dest = dirs.raw_path(window, session);
    // The seeded session counter makes collisions impossible in
    // normal operation; refuse rather than silently replace sealed
    // data if one happens anyway (e.g. a hand-copied segment).
    if dest.exists() {
        return Err(StoreError::Incompatible(format!(
            "raw segment {} already exists; refusing to overwrite it",
            dest.display()
        )));
    }
    std::fs::rename(part, &dest).map_err(|e| StoreError::Io(e).at(&dest))?;
    Ok(true)
}

fn seal_session(
    shared: &Shared,
    part: &Path,
    window: &str,
    session: &str,
) -> Result<bool, StoreError> {
    let _guard = shared.tiers.lock().unwrap();
    seal_part(&shared.dirs, part, window, session)
}

/// Startup sweep of `ingest/`: a staging file left by a crashed boot
/// is sealed into its window exactly as a mid-session disconnect
/// would have sealed it (readable prefix kept, unusable remainder
/// discarded); files whose names don't parse are removed.
fn recover_ingest(dirs: &StoreDirs) {
    let Ok(entries) = std::fs::read_dir(dirs.ingest_dir()) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "part") {
            continue;
        }
        let parsed = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|stem| stem.split_once('@'))
            .filter(|(window, _)| valid_label(window));
        let Some((window, session)) = parsed else {
            eprintln!(
                "mp-serve: removing unrecognized staging file {}",
                path.display()
            );
            let _ = std::fs::remove_file(&path);
            continue;
        };
        match seal_part(dirs, &path, window, session) {
            Ok(true) => eprintln!("mp-serve: recovered {session} into window {window}"),
            Ok(false) => eprintln!("mp-serve: discarded {session}: no parseable prefix"),
            Err(e) => eprintln!("mp-serve: cannot recover {}: {e}", path.display()),
        }
    }
}

fn handle_query(shared: &Shared, mut stream: TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let line = String::from_utf8_lossy(payload);
    let outcome = {
        let _guard = shared.tiers.lock().unwrap();
        answer(&shared.dirs, line.trim())
    };
    match outcome {
        Ok(QueryOutcome::Text(text)) => write_frame(&mut stream, TAG_RESULT, text.as_bytes()),
        Ok(QueryOutcome::Compact) => {
            let report = {
                let mut cache = shared.tiers.lock().unwrap();
                compact_all(&shared.dirs, &mut cache)
            };
            match report {
                Ok(r) => write_frame(&mut stream, TAG_RESULT, r.render().as_bytes()),
                Err(e) => write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes()),
            }
        }
        Ok(QueryOutcome::Shutdown) => {
            write_frame(&mut stream, TAG_RESULT, b"shutting down\n")?;
            shared.stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so it notices the flag.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            Ok(())
        }
        Err(e) => write_frame(&mut stream, TAG_ERROR, e.to_string().as_bytes()),
    }
}

/// Client side of a query: connect, send one QUERY line, return the
/// RESULT text (or the daemon's error).
pub fn query(addr: &str, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, TAG_QUERY, line.as_bytes())?;
    let reply = read_frame(&mut stream).map_err(|e| match e {
        WireError::Io(e) => e,
        other => std::io::Error::other(other.to_string()),
    })?;
    match reply.tag {
        TAG_RESULT => Ok(String::from_utf8_lossy(&reply.payload).to_string()),
        TAG_ERROR => Err(std::io::Error::other(
            String::from_utf8_lossy(&reply.payload).to_string(),
        )),
        tag => Err(std::io::Error::other(format!(
            "unexpected query reply (tag {tag})"
        ))),
    }
}
