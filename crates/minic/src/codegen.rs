//! Code generation: HIR → SimSPARC, with the `-xhwcprof` codegen
//! changes the paper describes (§2.1):
//!
//! * `nop` padding between memory operations and join nodes (labels or
//!   branches), so a skidded counter event is captured in the same
//!   basic block as the triggering instruction;
//! * loads and stores are kept out of branch delay slots;
//! * every memory operation carries its data-object descriptor, every
//!   PC its source line, and every branch target is recorded.
//!
//! Neither flag suppresses optimization: the delay-slot filling pass
//! still runs with `-xhwcprof`, it just refuses to move memory
//! operations into slots. The residual cost (extra `nop`s and unfilled
//! slots) is the ~1.3% overhead measured in the paper.
//!
//! Register model: locals live in the callee-saved registers
//! `%l0..%l7,%i0..%i5` (14; spills go to frame slots); expressions
//! evaluate in the caller-saved scratch pool `%g1..%g5,%o0..%o5`;
//! arguments pass in `%o0..%o5`; results return in `%o0`.

use simsparc_isa::{trap, AluOp, Cond, Insn, MemWidth, Operand, Reg};

use crate::ast::{BinOp, UnOp};
use crate::error::{CompileError, Result};
use crate::feedback::Feedback;
use crate::hir::*;
use crate::symtab::PcMeta;
use crate::types::{StructInfo, Type};

/// Compiler flags, mirroring the paper's command line.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// `-xhwcprof`: memory-profiling support.
    pub hwcprof: bool,
    /// `-xdebugformat=dwarf`: symbol tables that support memory
    /// profiling (STABS — `false` — does not carry branch-target
    /// info, making trigger validation impossible).
    pub dwarf: bool,
    /// `-xprefetch`: honour `prefetch()` builtins (otherwise they
    /// compile to nothing).
    pub prefetch: bool,
    /// `-O`: fill branch delay slots.
    pub opt: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        // The paper's production build: `-fast` without profiling.
        CompileOptions {
            hwcprof: false,
            dwarf: false,
            prefetch: false,
            opt: true,
        }
    }
}

impl CompileOptions {
    /// The paper's profiling build:
    /// `-fast -xhwcprof -xdebugformat=dwarf`.
    pub fn profiling() -> CompileOptions {
        CompileOptions {
            hwcprof: true,
            dwarf: true,
            prefetch: false,
            opt: true,
        }
    }
}

/// Relocations resolved at link time.
#[derive(Clone, Debug, PartialEq)]
pub enum RelocKind {
    /// Patch a `call` displacement to the named function.
    Call(String),
    /// Patch a `sethi` with the high 21 bits of a global's address.
    GlobalHi(String),
    /// Patch an `or` immediate with the low 11 bits.
    GlobalLo(String),
}

/// A compiled (but not yet linked) module.
#[derive(Clone, Debug)]
pub struct ObjModule {
    pub name: String,
    pub options: CompileOptions,
    pub source: String,
    pub structs: Vec<StructInfo>,
    pub globals: Vec<HGlobal>,
    pub funcs: Vec<ObjFunc>,
    pub insns: Vec<Insn>,
    /// Parallel to `insns`.
    pub metas: Vec<PcMeta>,
    /// Relocations into `insns`.
    pub relocs: Vec<(usize, RelocKind)>,
}

/// A function's extent within its module's instruction vector.
#[derive(Clone, Debug)]
pub struct ObjFunc {
    pub name: String,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// Generate code for a typed module, optionally applying
/// profile-feedback prefetch hints (§4).
pub fn generate(hm: &HModule, options: CompileOptions, feedback: &Feedback) -> Result<ObjModule> {
    let mut out = ObjModule {
        name: hm.name.clone(),
        options,
        source: hm.source.clone(),
        structs: hm.structs.clone(),
        globals: hm.globals.clone(),
        funcs: Vec::new(),
        insns: Vec::new(),
        metas: Vec::new(),
        relocs: Vec::new(),
    };
    for f in &hm.funcs {
        let start = out.insns.len();
        let mut gen = FnGen::new(hm, f, options, feedback);
        gen.run()?;
        gen.finish(&mut out)?;
        out.funcs.push(ObjFunc {
            name: f.name.clone(),
            start,
            end: out.insns.len(),
            line: f.line,
        });
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Virtual code: instructions with symbolic labels, so the padding and
// delay-slot passes can edit freely before displacements are fixed.
// ----------------------------------------------------------------------

type LabelId = u32;

#[derive(Clone, Debug)]
enum VInsn {
    Real {
        insn: Insn,
        line: u32,
        desc: MemDesc,
        reloc: Option<RelocKind>,
    },
    Br {
        cond: Cond,
        label: LabelId,
        line: u32,
    },
    Label(LabelId),
}

impl VInsn {
    fn real(insn: Insn, line: u32) -> VInsn {
        VInsn::Real {
            insn,
            line,
            desc: MemDesc::None,
            reloc: None,
        }
    }

    fn is_transfer(&self) -> bool {
        match self {
            VInsn::Br { .. } => true,
            VInsn::Real { insn, .. } => insn.is_delayed_transfer(),
            VInsn::Label(_) => false,
        }
    }
}

/// Where a local lives.
#[derive(Clone, Copy, Debug)]
enum Loc {
    Reg(Reg),
    /// Frame slot at `[%sp + offset]`.
    Frame(i64),
}

/// Expression value: an owned scratch register (must be freed) or a
/// borrowed local home register (must not be written or freed).
#[derive(Clone, Copy, Debug)]
enum Val {
    Owned(Reg),
    Borrowed(Reg),
}

impl Val {
    fn reg(self) -> Reg {
        match self {
            Val::Owned(r) | Val::Borrowed(r) => r,
        }
    }
}

const CALLEE_SAVED: [Reg; 14] = [
    Reg::L0,
    Reg::L1,
    Reg::L2,
    Reg::L3,
    Reg::L4,
    Reg::L5,
    Reg::L6,
    Reg::L7,
    Reg::I0,
    Reg::I1,
    Reg::I2,
    Reg::I3,
    Reg::I4,
    Reg::I5,
];

const SCRATCH: [Reg; 11] = [
    Reg::G1,
    Reg::G2,
    Reg::G3,
    Reg::G4,
    Reg::G5,
    Reg::O0,
    Reg::O1,
    Reg::O2,
    Reg::O3,
    Reg::O4,
    Reg::O5,
];

const ARG_REGS: [Reg; 6] = [Reg::O0, Reg::O1, Reg::O2, Reg::O3, Reg::O4, Reg::O5];

struct FnGen<'a> {
    hm: &'a HModule,
    f: &'a HFunc,
    options: CompileOptions,
    feedback: &'a Feedback,
    v: Vec<VInsn>,
    next_label: LabelId,
    locs: Vec<Loc>,
    free: Vec<Reg>,
    active: Vec<Reg>,
    /// (break, continue) label stack.
    loops: Vec<(LabelId, LabelId)>,
    ret_label: LabelId,
    line: u32,
    makes_calls: bool,
    used_callee: Vec<Reg>,
    /// Next free temp-slot offset (relative to temp area start).
    temp_next: i64,
    temp_high: i64,
}

impl<'a> FnGen<'a> {
    fn new(
        hm: &'a HModule,
        f: &'a HFunc,
        options: CompileOptions,
        feedback: &'a Feedback,
    ) -> FnGen<'a> {
        FnGen {
            hm,
            f,
            options,
            feedback,
            v: Vec::with_capacity(64),
            next_label: 0,
            locs: Vec::new(),
            free: SCRATCH.iter().rev().copied().collect(),
            active: Vec::new(),
            loops: Vec::new(),
            ret_label: 0,
            line: f.line,
            makes_calls: false,
            used_callee: Vec::new(),
            temp_next: 0,
            temp_high: 0,
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(CompileError::codegen(&self.hm.name, self.line, msg))
    }

    fn new_label(&mut self) -> LabelId {
        self.next_label += 1;
        self.next_label - 1
    }

    fn emit(&mut self, insn: Insn) {
        self.v.push(VInsn::real(insn, self.line));
    }

    fn emit_desc(&mut self, insn: Insn, desc: MemDesc) {
        // Descriptors are only recorded when compiling for memory
        // profiling; a plain build strips them, like a compiler
        // without -xhwcprof.
        let desc = if self.options.hwcprof && self.options.dwarf {
            desc
        } else {
            MemDesc::None
        };
        self.v.push(VInsn::Real {
            insn,
            line: self.line,
            desc,
            reloc: None,
        });
    }

    fn emit_reloc(&mut self, insn: Insn, reloc: RelocKind) {
        self.v.push(VInsn::Real {
            insn,
            line: self.line,
            desc: MemDesc::None,
            reloc: Some(reloc),
        });
    }

    fn emit_label(&mut self, l: LabelId) {
        self.v.push(VInsn::Label(l));
    }

    fn emit_branch(&mut self, cond: Cond, label: LabelId) {
        self.v.push(VInsn::Br {
            cond,
            label,
            line: self.line,
        });
        // Delay slot, possibly filled later.
        self.emit(Insn::Nop);
    }

    // ------------------------------------------------------------------
    // Scratch registers and temp slots
    // ------------------------------------------------------------------

    fn alloc(&mut self) -> Result<Reg> {
        let Some(r) = self.free.pop() else {
            return self.err("expression too complex: out of scratch registers");
        };
        self.active.push(r);
        Ok(r)
    }

    fn free_val(&mut self, v: Val) {
        if let Val::Owned(r) = v {
            self.release(r);
        }
    }

    fn release(&mut self, r: Reg) {
        if let Some(pos) = self.active.iter().position(|&a| a == r) {
            self.active.swap_remove(pos);
            self.free.push(r);
        }
    }

    /// Allocate a frame temp slot (stack discipline via `temp_reset`).
    fn alloc_temp(&mut self) -> i64 {
        let off = self.temp_next;
        self.temp_next += 8;
        self.temp_high = self.temp_high.max(self.temp_next);
        off
    }

    fn temp_mark(&self) -> i64 {
        self.temp_next
    }

    fn temp_reset(&mut self, mark: i64) {
        self.temp_next = mark;
    }

    /// Offset of the temp area within the frame: after the %o7 save
    /// and the callee-saved save area and named-local slots. Only
    /// known at `finish` time; temps are emitted relative to a
    /// placeholder base and patched. To keep it simple the frame is
    /// laid out with the temp area *first*:
    ///
    /// ```text
    /// [%sp + 0 ..)            temp spill slots
    /// [%sp + T ..)            named local slots (locals beyond 14)
    /// [%sp + T + N ..)        callee-saved saves + %o7 save
    /// ```
    ///
    /// so temp offsets are final as soon as they are allocated.
    fn stack_local_off(&self, slot_index: i64) -> i64 {
        // Patched in finish(): slot offsets are assigned after the
        // body is generated. We reserve a generous fixed temp area
        // instead: 64 slots.
        TEMP_AREA + slot_index * 8
    }

    // ------------------------------------------------------------------
    // Value materialization
    // ------------------------------------------------------------------

    /// Materialize a constant into `dest`.
    fn load_const(&mut self, value: i64, dest: Reg) -> Result<()> {
        if let Some(op) = Operand::imm(value) {
            self.emit(Insn::mov(op, dest));
            return Ok(());
        }
        let neg = value < 0;
        let abs = value.unsigned_abs();
        if abs > u32::MAX as u64 {
            return self.err(&format!("constant {value} out of 32-bit range"));
        }
        let hi = (abs >> 11) as u32;
        let lo = (abs & 0x7ff) as i64;
        self.emit(Insn::Sethi {
            imm21: hi,
            rd: dest,
        });
        if lo != 0 {
            self.emit(Insn::alu(AluOp::Or, dest, Operand::Imm(lo as i16), dest));
        }
        if neg {
            self.emit(Insn::alu(AluOp::Sub, Reg::G0, Operand::Reg(dest), dest));
        }
        Ok(())
    }

    /// Materialize a global's address into `dest` (link-time patch).
    fn load_global_addr(&mut self, name: &str, dest: Reg) {
        self.emit_reloc(
            Insn::Sethi { imm21: 0, rd: dest },
            RelocKind::GlobalHi(name.to_string()),
        );
        self.emit_reloc(
            Insn::alu(AluOp::Or, dest, Operand::Imm(0), dest),
            RelocKind::GlobalLo(name.to_string()),
        );
    }

    fn width_of(ty: &Type) -> MemWidth {
        match ty {
            Type::Char => MemWidth::B,
            _ => MemWidth::X,
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Sethi–Ullman-style estimate of how many scratch registers an
    /// expression needs. Used to evaluate the register-hungrier
    /// operand of a binary first, keeping deep trees within the
    /// 11-register scratch pool. (Like C, mini-C leaves operand
    /// evaluation order unspecified; expression evaluation has no
    /// observable side effects besides calls, whose relative order
    /// with sibling operands is unspecified too.)
    fn reg_need(e: &HExpr) -> u32 {
        match &e.kind {
            HExprKind::Local(_) => 0,
            HExprKind::Const(_) | HExprKind::GlobalAddr(_) => 1,
            HExprKind::Load { base, .. } => Self::reg_need(base).max(1),
            HExprKind::Unary(UnOp::Neg, x) => Self::reg_need(x).max(1),
            // Boolean materialization holds an extra flag register.
            HExprKind::Unary(UnOp::Not, x) => Self::reg_need(x) + 1,
            HExprKind::Binary(op, l, r)
                if op.is_comparison() || matches!(op, BinOp::LogAnd | BinOp::LogOr) =>
            {
                Self::reg_need(l).max(Self::reg_need(r)) + 1
            }
            HExprKind::Binary(_, l, r) => {
                let (a, b) = (Self::reg_need(l), Self::reg_need(r));
                if a == b {
                    a + 1
                } else {
                    a.max(b)
                }
            }
            // Arguments are staged through frame temps and live
            // scratch is spilled around the call itself.
            HExprKind::Call { .. } => 2,
        }
    }

    /// Evaluate both operands of a binary, needier side first, and
    /// return them in source order.
    fn gen_pair(&mut self, l: &HExpr, r: &HExpr) -> Result<(Val, Val)> {
        if Self::reg_need(r) > Self::reg_need(l) {
            let rv = self.gen_expr(r)?;
            let lv = self.gen_expr(l)?;
            Ok((lv, rv))
        } else {
            let lv = self.gen_expr(l)?;
            let rv = self.gen_expr(r)?;
            Ok((lv, rv))
        }
    }

    fn gen_expr(&mut self, e: &HExpr) -> Result<Val> {
        self.line = e.line;
        match &e.kind {
            HExprKind::Local(i) => match self.locs[*i] {
                Loc::Reg(r) => Ok(Val::Borrowed(r)),
                Loc::Frame(off) => {
                    let d = self.alloc()?;
                    let name = self.f.locals[*i].name.clone();
                    self.emit_desc(
                        Insn::load_x(Reg::SP, Operand::Imm(off as i16), d),
                        MemDesc::Scalar {
                            name,
                            type_desc: "long".to_string(),
                        },
                    );
                    Ok(Val::Owned(d))
                }
            },
            // Plain binary arithmetic: evaluate operands first and
            // reuse an owned operand register as the destination, so a
            // left-deep expression chain uses O(1) scratch registers
            // instead of one per nesting level.
            HExprKind::Binary(op, l, r)
                if !op.is_comparison() && !matches!(op, BinOp::LogAnd | BinOp::LogOr) =>
            {
                let op = *op;
                if op != BinOp::Rem {
                    if let HExprKind::Const(c) = r.kind {
                        if let Some(imm) = Operand::imm(c) {
                            let lv = self.gen_expr(l)?;
                            self.line = e.line;
                            let dest = match lv {
                                Val::Owned(r) => r,
                                Val::Borrowed(_) => self.alloc()?,
                            };
                            self.emit_alu_op(op, lv.reg(), imm, dest)?;
                            return Ok(Val::Owned(dest));
                        }
                    }
                }
                let (lv, rv) = self.gen_pair(l, r)?;
                self.line = e.line;
                if op == BinOp::Rem {
                    // a % b = a - (a / b) * b; q is a distinct scratch.
                    let q = self.alloc()?;
                    self.emit(Insn::alu(AluOp::Div, lv.reg(), Operand::Reg(rv.reg()), q));
                    self.emit(Insn::alu(AluOp::Mul, q, Operand::Reg(rv.reg()), q));
                    let dest = match (lv, rv) {
                        (Val::Owned(d), _) => d,
                        (_, Val::Owned(d)) => d,
                        _ => self.alloc()?,
                    };
                    self.emit(Insn::alu(AluOp::Sub, lv.reg(), Operand::Reg(q), dest));
                    self.release(q);
                    // Free whichever owned operand is not the dest.
                    for v in [lv, rv] {
                        if let Val::Owned(r) = v {
                            if r != dest {
                                self.release(r);
                            }
                        }
                    }
                    return Ok(Val::Owned(dest));
                }
                let dest = match (lv, rv) {
                    (Val::Owned(d), _) => d,
                    (_, Val::Owned(d)) => d,
                    _ => self.alloc()?,
                };
                self.emit_alu_op(op, lv.reg(), Operand::Reg(rv.reg()), dest)?;
                for v in [lv, rv] {
                    if let Val::Owned(r) = v {
                        if r != dest {
                            self.release(r);
                        }
                    }
                }
                Ok(Val::Owned(dest))
            }
            _ => {
                let d = self.alloc()?;
                self.gen_expr_into(e, d)?;
                Ok(Val::Owned(d))
            }
        }
    }

    /// Evaluate `e` into a specific destination register. `dest` may
    /// be a local's home register; the generated code must complete
    /// all reads of `e`'s operands before the final write to `dest`.
    fn gen_expr_into(&mut self, e: &HExpr, dest: Reg) -> Result<()> {
        self.line = e.line;
        match &e.kind {
            HExprKind::Const(v) => self.load_const(*v, dest),
            HExprKind::Local(i) => {
                match self.locs[*i] {
                    Loc::Reg(r) => {
                        if r != dest {
                            self.emit(Insn::mov(Operand::Reg(r), dest));
                        }
                    }
                    Loc::Frame(off) => {
                        let name = self.f.locals[*i].name.clone();
                        self.emit_desc(
                            Insn::load_x(Reg::SP, Operand::Imm(off as i16), dest),
                            MemDesc::Scalar {
                                name,
                                type_desc: "long".to_string(),
                            },
                        );
                    }
                }
                Ok(())
            }
            HExprKind::GlobalAddr(name) => {
                let name = name.clone();
                self.load_global_addr(&name, dest);
                Ok(())
            }
            HExprKind::Load {
                base,
                offset,
                loaded_ty,
                desc,
            } => {
                let (base_reg, op2) = self.gen_address(base, *offset)?;
                let width = Self::width_of(loaded_ty);
                self.line = e.line;
                self.emit_desc(
                    Insn::Load {
                        width,
                        signed: false,
                        rs1: base_reg.reg(),
                        op2,
                        rd: dest,
                    },
                    desc.clone(),
                );
                // Profile-feedback prefetch (4): fetch `lookahead`
                // bytes ahead of a load the profile flagged as
                // miss-heavy. Only for base+imm addressing; indexed
                // addresses would need an extra add.
                if let Some(la) = self.feedback.lookahead_for(&self.f.name, e.line) {
                    if let Operand::Imm(base_off) = op2 {
                        if let Some(pf) = Operand::imm(base_off as i64 + la) {
                            self.emit(Insn::Prefetch {
                                rs1: base_reg.reg(),
                                op2: pf,
                            });
                        }
                    }
                }
                self.free_val(base_reg);
                if let Operand::Reg(r) = op2 {
                    self.release(r);
                }
                Ok(())
            }
            HExprKind::Unary(UnOp::Neg, inner) => {
                let v = self.gen_expr(inner)?;
                self.line = e.line;
                self.emit(Insn::alu(AluOp::Sub, Reg::G0, Operand::Reg(v.reg()), dest));
                self.free_val(v);
                Ok(())
            }
            HExprKind::Unary(UnOp::Not, _)
            | HExprKind::Binary(BinOp::LogAnd | BinOp::LogOr, _, _) => self.gen_bool_value(e, dest),
            HExprKind::Binary(op, _, _) if op.is_comparison() => self.gen_bool_value(e, dest),
            HExprKind::Binary(op, l, r) => {
                // Constant rhs that fits simm13 avoids a register.
                if !matches!(op, BinOp::Rem) {
                    if let HExprKind::Const(c) = r.kind {
                        if let Some(imm) = Operand::imm(c) {
                            let lv = self.gen_expr(l)?;
                            self.line = e.line;
                            self.emit_alu_op(*op, lv.reg(), imm, dest)?;
                            self.free_val(lv);
                            return Ok(());
                        }
                    }
                }
                let (lv, rv) = self.gen_pair(l, r)?;
                self.line = e.line;
                if *op == BinOp::Rem {
                    // a % b = a - (a / b) * b
                    let q = self.alloc()?;
                    self.emit(Insn::alu(AluOp::Div, lv.reg(), Operand::Reg(rv.reg()), q));
                    self.emit(Insn::alu(AluOp::Mul, q, Operand::Reg(rv.reg()), q));
                    self.emit(Insn::alu(AluOp::Sub, lv.reg(), Operand::Reg(q), dest));
                    self.release(q);
                } else {
                    self.emit_alu_op(*op, lv.reg(), Operand::Reg(rv.reg()), dest)?;
                }
                self.free_val(lv);
                self.free_val(rv);
                Ok(())
            }
            HExprKind::Call { target, args } => {
                self.gen_call(target, args, Some(dest))?;
                Ok(())
            }
        }
    }

    fn emit_alu_op(&mut self, op: BinOp, rs1: Reg, op2: Operand, rd: Reg) -> Result<()> {
        let alu = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Sll,
            BinOp::Shr => AluOp::Sra,
            other => return self.err(&format!("operator {other:?} has no ALU form")),
        };
        self.emit(Insn::alu(alu, rs1, op2, rd));
        Ok(())
    }

    /// Compute an addressing mode for `base + offset`: a base register
    /// plus either an immediate or an index register.
    fn gen_address(&mut self, base: &HExpr, offset: i64) -> Result<(Val, Operand)> {
        // Fold `(a + b) + offset` where b is a scaled index: use
        // reg+reg addressing when offset is 0.
        if offset == 0 {
            if let HExprKind::Binary(BinOp::Add, a, b) = &base.kind {
                if a.ty.is_ptr() && b.ty == Type::Long {
                    let av = self.gen_expr(a)?;
                    let bv = self.gen_expr(b)?;
                    let op2 = Operand::Reg(bv.reg());
                    // Ownership of bv's register passes to the caller
                    // via the operand; caller releases it.
                    if let Val::Borrowed(r) = bv {
                        // Borrowed registers must not be released by the
                        // caller; copy to a scratch so release is safe.
                        let t = self.alloc()?;
                        self.emit(Insn::mov(Operand::Reg(r), t));
                        return Ok((av, Operand::Reg(t)));
                    }
                    // Keep bv active; caller releases via release().
                    if let Val::Owned(r) = bv {
                        debug_assert!(self.active.contains(&r));
                    }
                    return Ok((av, op2));
                }
            }
        }
        let bv = self.gen_expr(base)?;
        if let Some(imm) = Operand::imm(offset) {
            Ok((bv, imm))
        } else {
            let t = self.alloc()?;
            self.load_const(offset, t)?;
            Ok((bv, Operand::Reg(t)))
        }
    }

    /// Materialize a boolean expression as 0/1.
    fn gen_bool_value(&mut self, e: &HExpr, dest: Reg) -> Result<()> {
        // `dest` may be a local read inside `e`, so build in a scratch
        // register and move at the end.
        let t = self.alloc()?;
        let l_false = self.new_label();
        let l_end = self.new_label();
        self.emit(Insn::mov(Operand::Imm(1), t));
        self.gen_cond_false(e, l_false)?;
        self.emit_branch(Cond::A, l_end);
        self.emit_label(l_false);
        self.emit(Insn::mov(Operand::Imm(0), t));
        self.emit_label(l_end);
        if t != dest {
            self.emit(Insn::mov(Operand::Reg(t), dest));
        }
        self.release(t);
        Ok(())
    }

    /// Branch to `l_false` when `e` evaluates to zero; fall through
    /// otherwise.
    fn gen_cond_false(&mut self, e: &HExpr, l_false: LabelId) -> Result<()> {
        self.line = e.line;
        match &e.kind {
            HExprKind::Binary(op, l, r) if op.is_comparison() => {
                self.gen_compare_branch(*op, l, r, l_false, true)
            }
            HExprKind::Binary(BinOp::LogAnd, l, r) => {
                self.gen_cond_false(l, l_false)?;
                self.gen_cond_false(r, l_false)
            }
            HExprKind::Binary(BinOp::LogOr, l, r) => {
                let l_true = self.new_label();
                self.gen_cond_true(l, l_true)?;
                self.gen_cond_false(r, l_false)?;
                self.emit_label(l_true);
                Ok(())
            }
            HExprKind::Unary(UnOp::Not, inner) => self.gen_cond_true(inner, l_false),
            _ => {
                let v = self.gen_expr(e)?;
                self.line = e.line;
                self.emit(Insn::cmp(v.reg(), Operand::Imm(0)));
                self.free_val(v);
                self.emit_branch(Cond::E, l_false);
                Ok(())
            }
        }
    }

    /// Branch to `l_true` when `e` evaluates nonzero.
    fn gen_cond_true(&mut self, e: &HExpr, l_true: LabelId) -> Result<()> {
        self.line = e.line;
        match &e.kind {
            HExprKind::Binary(op, l, r) if op.is_comparison() => {
                self.gen_compare_branch(*op, l, r, l_true, false)
            }
            HExprKind::Binary(BinOp::LogAnd, l, r) => {
                let l_false = self.new_label();
                self.gen_cond_false(l, l_false)?;
                self.gen_cond_true(r, l_true)?;
                self.emit_label(l_false);
                Ok(())
            }
            HExprKind::Binary(BinOp::LogOr, l, r) => {
                self.gen_cond_true(l, l_true)?;
                self.gen_cond_true(r, l_true)
            }
            HExprKind::Unary(UnOp::Not, inner) => self.gen_cond_false(inner, l_true),
            _ => {
                let v = self.gen_expr(e)?;
                self.line = e.line;
                self.emit(Insn::cmp(v.reg(), Operand::Imm(0)));
                self.free_val(v);
                self.emit_branch(Cond::Ne, l_true);
                Ok(())
            }
        }
    }

    fn gen_compare_branch(
        &mut self,
        op: BinOp,
        l: &HExpr,
        r: &HExpr,
        label: LabelId,
        negate: bool,
    ) -> Result<()> {
        let const_imm = if let HExprKind::Const(c) = r.kind {
            Operand::imm(c)
        } else {
            None
        };
        let (lv, op2, rv) = match const_imm {
            Some(imm) => (self.gen_expr(l)?, imm, None),
            None => {
                let (lv, rv) = self.gen_pair(l, r)?;
                (lv, Operand::Reg(rv.reg()), Some(rv))
            }
        };
        self.emit(Insn::cmp(lv.reg(), op2));
        self.free_val(lv);
        if let Some(rv) = rv {
            self.free_val(rv);
        }
        let cond = match op {
            BinOp::Lt => Cond::L,
            BinOp::Le => Cond::Le,
            BinOp::Gt => Cond::G,
            BinOp::Ge => Cond::Ge,
            BinOp::Eq => Cond::E,
            BinOp::Ne => Cond::Ne,
            _ => unreachable!("not a comparison"),
        };
        let cond = if negate { cond.negate() } else { cond };
        self.emit_branch(cond, label);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    fn gen_call(&mut self, target: &CallTarget, args: &[HExpr], dest: Option<Reg>) -> Result<()> {
        let line = self.line;
        match target {
            CallTarget::Builtin(b) => self.gen_builtin(*b, args, line),
            CallTarget::Func(name) => {
                self.makes_calls = true;
                let mark = self.temp_mark();
                // Evaluate each argument into a frame temp.
                let mut slots = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.gen_expr(a)?;
                    let off = self.alloc_temp();
                    self.emit_desc(
                        Insn::store_x(v.reg(), Reg::SP, Operand::Imm(off as i16)),
                        MemDesc::Temporary,
                    );
                    self.free_val(v);
                    slots.push(off);
                }
                // Spill live scratch registers across the call — except
                // the destination, whose pre-call value is dead (we are
                // about to overwrite it with the result; restoring over
                // it would clobber the result).
                let live: Vec<Reg> = self
                    .active
                    .iter()
                    .copied()
                    .filter(|r| Some(*r) != dest)
                    .collect();
                let mut spills = Vec::with_capacity(live.len());
                for r in &live {
                    let off = self.alloc_temp();
                    self.emit_desc(
                        Insn::store_x(*r, Reg::SP, Operand::Imm(off as i16)),
                        MemDesc::Temporary,
                    );
                    spills.push((*r, off));
                }
                // Stage arguments.
                for (i, off) in slots.iter().enumerate() {
                    self.emit_desc(
                        Insn::load_x(Reg::SP, Operand::Imm(*off as i16), ARG_REGS[i]),
                        MemDesc::Temporary,
                    );
                }
                self.line = line;
                self.emit_reloc(Insn::Call { disp: 0 }, RelocKind::Call(name.clone()));
                self.emit(Insn::Nop); // delay slot
                                      // Capture the result before restoring spills; the
                                      // destination is never in `spills` by construction.
                if let Some(d) = dest {
                    if d != Reg::O0 {
                        self.emit(Insn::mov(Operand::Reg(Reg::O0), d));
                    }
                }
                for (r, off) in spills {
                    self.emit_desc(
                        Insn::load_x(Reg::SP, Operand::Imm(off as i16), r),
                        MemDesc::Temporary,
                    );
                }
                self.temp_reset(mark);
                Ok(())
            }
        }
    }

    fn gen_builtin(&mut self, b: Builtin, args: &[HExpr], line: u32) -> Result<()> {
        match b {
            Builtin::Prefetch => {
                let v = self.gen_expr(&args[0])?;
                self.line = line;
                if self.options.prefetch {
                    self.emit(Insn::Prefetch {
                        rs1: v.reg(),
                        op2: Operand::Imm(0),
                    });
                }
                self.free_val(v);
                Ok(())
            }
            Builtin::PrintLong | Builtin::PrintChar | Builtin::Exit => {
                // These need %o0; spill it if live.
                let v = self.gen_expr(&args[0])?;
                self.line = line;
                let o0_live = self.active.contains(&Reg::O0) && v.reg() != Reg::O0;
                let mark = self.temp_mark();
                let spill = if o0_live {
                    let off = self.alloc_temp();
                    self.emit_desc(
                        Insn::store_x(Reg::O0, Reg::SP, Operand::Imm(off as i16)),
                        MemDesc::Temporary,
                    );
                    Some(off)
                } else {
                    None
                };
                if v.reg() != Reg::O0 {
                    self.emit(Insn::mov(Operand::Reg(v.reg()), Reg::O0));
                }
                let num = match b {
                    Builtin::PrintLong => trap::HOSTCALL_BASE,
                    Builtin::PrintChar => trap::HOSTCALL_BASE + 1,
                    Builtin::Exit => trap::EXIT,
                    Builtin::Prefetch => unreachable!(),
                };
                self.emit(Insn::Trap { num });
                if let Some(off) = spill {
                    self.emit_desc(
                        Insn::load_x(Reg::SP, Operand::Imm(off as i16), Reg::O0),
                        MemDesc::Temporary,
                    );
                }
                self.temp_reset(mark);
                self.free_val(v);
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn gen_stmt(&mut self, s: &HStmt) -> Result<()> {
        match s {
            HStmt::AssignLocal { index, value, line } => {
                self.line = *line;
                match self.locs[*index] {
                    Loc::Reg(home) => self.gen_expr_into(value, home)?,
                    Loc::Frame(off) => {
                        let v = self.gen_expr(value)?;
                        self.line = *line;
                        let name = self.f.locals[*index].name.clone();
                        self.emit_desc(
                            Insn::store_x(v.reg(), Reg::SP, Operand::Imm(off as i16)),
                            MemDesc::Scalar {
                                name,
                                type_desc: "long".to_string(),
                            },
                        );
                        self.free_val(v);
                    }
                }
                Ok(())
            }
            HStmt::Store {
                base,
                offset,
                value,
                ty,
                desc,
                line,
            } => {
                self.line = *line;
                let v = self.gen_expr(value)?;
                let (bv, op2) = self.gen_address(base, *offset)?;
                self.line = *line;
                self.emit_desc(
                    Insn::Store {
                        width: Self::width_of(ty),
                        src: v.reg(),
                        rs1: bv.reg(),
                        op2,
                    },
                    desc.clone(),
                );
                self.free_val(v);
                self.free_val(bv);
                if let Operand::Reg(r) = op2 {
                    self.release(r);
                }
                Ok(())
            }
            HStmt::Expr(e, line) => {
                self.line = *line;
                if let HExprKind::Call { target, args } = &e.kind {
                    self.gen_call(target, args, None)
                } else {
                    let v = self.gen_expr(e)?;
                    self.free_val(v);
                    Ok(())
                }
            }
            HStmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                self.line = *line;
                if else_body.is_empty() {
                    let l_end = self.new_label();
                    self.gen_cond_false(cond, l_end)?;
                    for st in then_body {
                        self.gen_stmt(st)?;
                    }
                    self.emit_label(l_end);
                } else {
                    let l_else = self.new_label();
                    let l_end = self.new_label();
                    self.gen_cond_false(cond, l_else)?;
                    for st in then_body {
                        self.gen_stmt(st)?;
                    }
                    self.emit_branch(Cond::A, l_end);
                    self.emit_label(l_else);
                    for st in else_body {
                        self.gen_stmt(st)?;
                    }
                    self.emit_label(l_end);
                }
                Ok(())
            }
            HStmt::While { cond, body, line } => {
                self.line = *line;
                let l_body = self.new_label();
                let l_cond = self.new_label();
                let l_end = self.new_label();
                // Rotated loop: one branch per iteration.
                self.emit_branch(Cond::A, l_cond);
                self.emit_label(l_body);
                self.loops.push((l_end, l_cond));
                for st in body {
                    self.gen_stmt(st)?;
                }
                self.loops.pop();
                self.emit_label(l_cond);
                self.line = *line;
                self.gen_cond_true(cond, l_body)?;
                self.emit_label(l_end);
                Ok(())
            }
            HStmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                self.line = *line;
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let l_body = self.new_label();
                let l_step = self.new_label();
                let l_cond = self.new_label();
                let l_end = self.new_label();
                self.emit_branch(Cond::A, l_cond);
                self.emit_label(l_body);
                self.loops.push((l_end, l_step));
                for st in body {
                    self.gen_stmt(st)?;
                }
                self.loops.pop();
                self.emit_label(l_step);
                if let Some(step) = step {
                    self.gen_stmt(step)?;
                }
                self.emit_label(l_cond);
                self.line = *line;
                match cond {
                    Some(c) => self.gen_cond_true(c, l_body)?,
                    None => self.emit_branch(Cond::A, l_body),
                }
                self.emit_label(l_end);
                Ok(())
            }
            HStmt::Return(v, line) => {
                self.line = *line;
                if let Some(v) = v {
                    self.gen_expr_into(v, Reg::O0)?;
                }
                self.emit_branch(Cond::A, self.ret_label);
                Ok(())
            }
            HStmt::Break(line) => {
                self.line = *line;
                let Some(&(l_break, _)) = self.loops.last() else {
                    return self.err("break outside loop");
                };
                self.emit_branch(Cond::A, l_break);
                Ok(())
            }
            HStmt::Continue(line) => {
                self.line = *line;
                let Some(&(_, l_cont)) = self.loops.last() else {
                    return self.err("continue outside loop");
                };
                self.emit_branch(Cond::A, l_cont);
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Function assembly
    // ------------------------------------------------------------------

    fn run(&mut self) -> Result<()> {
        self.ret_label = self.new_label();
        // Assign local homes.
        for (i, _) in self.f.locals.iter().enumerate() {
            let loc = if i < CALLEE_SAVED.len() {
                let r = CALLEE_SAVED[i];
                self.used_callee.push(r);
                Loc::Reg(r)
            } else {
                Loc::Frame(self.stack_local_off((i - CALLEE_SAVED.len()) as i64))
            };
            self.locs.push(loc);
        }
        // Parameter moves are emitted in finish() as part of the
        // prologue; here we only generate the body.
        for s in &self.f.body {
            self.gen_stmt(s)?;
        }
        // Implicit `return 0;` for a function falling off the end.
        if self.f.ret != Type::Void {
            self.emit(Insn::mov(Operand::Imm(0), Reg::O0));
        }
        self.emit_label(self.ret_label);
        Ok(())
    }

    /// Assemble prologue + body + epilogue, run the hwcprof padding
    /// and delay-slot passes, resolve labels, and append to `out`.
    fn finish(self, out: &mut ObjModule) -> Result<()> {
        let FnGen {
            f,
            options,
            v: body,
            locs,
            used_callee,
            makes_calls,
            temp_high,
            hm,
            ..
        } = self;

        let n_stack_locals = f.locals.len().saturating_sub(CALLEE_SAVED.len()) as i64;
        // Frame: [0..TEMP_AREA) reserved temp slots + named stack
        // locals, then the save area.
        let save_base = TEMP_AREA + n_stack_locals * 8;
        let n_saves = used_callee.len() as i64 + i64::from(makes_calls);
        let mut frame = save_base + n_saves * 8;
        frame = (frame + 15) & !15;
        let needs_frame = n_saves > 0 || temp_high > 0 || n_stack_locals > 0;
        if temp_high > TEMP_AREA {
            return Err(CompileError::codegen(
                &hm.name,
                f.line,
                "temp spill area overflow",
            ));
        }

        let mut vcode: Vec<VInsn> = Vec::with_capacity(body.len() + 16);
        let fline = f.line;

        // Prologue.
        if needs_frame {
            vcode.push(VInsn::real(
                Insn::alu(AluOp::Sub, Reg::SP, Operand::Imm(frame as i16), Reg::SP),
                fline,
            ));
            if makes_calls {
                vcode.push(VInsn::real(
                    Insn::store_x(Reg::O7, Reg::SP, Operand::Imm(save_base as i16)),
                    fline,
                ));
            }
            for (k, r) in used_callee.iter().enumerate() {
                let off = save_base + (k as i64 + i64::from(makes_calls)) * 8;
                vcode.push(VInsn::real(
                    Insn::store_x(*r, Reg::SP, Operand::Imm(off as i16)),
                    fline,
                ));
            }
        }
        // Move parameters from %o registers to their homes.
        for i in 0..f.param_count {
            match locs[i] {
                Loc::Reg(home) => vcode.push(VInsn::real(
                    Insn::mov(Operand::Reg(ARG_REGS[i]), home),
                    fline,
                )),
                Loc::Frame(off) => vcode.push(VInsn::real(
                    Insn::store_x(ARG_REGS[i], Reg::SP, Operand::Imm(off as i16)),
                    fline,
                )),
            }
        }

        vcode.extend(body);

        // Epilogue (the ret label is the last Label in the body).
        if needs_frame {
            for (k, r) in used_callee.iter().enumerate() {
                let off = save_base + (k as i64 + i64::from(makes_calls)) * 8;
                vcode.push(VInsn::real(
                    Insn::load_x(Reg::SP, Operand::Imm(off as i16), *r),
                    fline,
                ));
            }
            if makes_calls {
                vcode.push(VInsn::real(
                    Insn::load_x(Reg::SP, Operand::Imm(save_base as i16), Reg::O7),
                    fline,
                ));
            }
            vcode.push(VInsn::real(
                Insn::alu(AluOp::Add, Reg::SP, Operand::Imm(frame as i16), Reg::SP),
                fline,
            ));
        }
        vcode.push(VInsn::real(Insn::ret(), fline));
        vcode.push(VInsn::real(Insn::Nop, fline));

        if options.hwcprof {
            pad_memops_before_join_nodes(&mut vcode);
        }
        if options.opt {
            fill_delay_slots(&mut vcode, options.hwcprof);
        }

        resolve(vcode, out)
    }
}

/// Reserved frame bytes for expression/call spill slots.
const TEMP_AREA: i64 = 64 * 8;

// ----------------------------------------------------------------------
// Post passes
// ----------------------------------------------------------------------

/// §2.1: "It may add nop instructions between loads and any join-nodes
/// (labels or branches) to help ensure that a profile event is
/// captured in the same basic block as the triggering instruction."
/// We guarantee at least [`PAD_DISTANCE`] non-memory instructions
/// between a memory reference and the next label or control transfer.
const PAD_DISTANCE: usize = 2;

fn pad_memops_before_join_nodes(v: &mut Vec<VInsn>) {
    let mut i = 0;
    // Distance (in real instructions) since the last memory op;
    // "far away" initially.
    let mut since_mem = PAD_DISTANCE;
    while i < v.len() {
        let is_join = matches!(v[i], VInsn::Label(_)) || v[i].is_transfer();
        if is_join && since_mem < PAD_DISTANCE {
            let line = line_of(&v[i.saturating_sub(1)]).unwrap_or(0);
            let need = PAD_DISTANCE - since_mem;
            for _ in 0..need {
                v.insert(i, VInsn::real(Insn::Nop, line));
            }
            i += need;
            since_mem = PAD_DISTANCE;
        }
        match &v[i] {
            VInsn::Real { insn, .. } if insn.is_memory_ref() => since_mem = 0,
            VInsn::Real { .. } | VInsn::Br { .. } => since_mem = since_mem.saturating_add(1),
            VInsn::Label(_) => {}
        }
        i += 1;
    }
}

fn line_of(v: &VInsn) -> Option<u32> {
    match v {
        VInsn::Real { line, .. } | VInsn::Br { line, .. } => Some(*line),
        VInsn::Label(_) => None,
    }
}

/// Fill branch delay slots by hoisting a safe preceding instruction
/// into the slot (removing it from its old position — labels are
/// symbolic elements of the vector, so removal cannot break them).
/// With `-xhwcprof` the compiler "avoids scheduling load or store
/// instructions in branch delay slots" (§2.1), so memory references
/// are not eligible then.
fn fill_delay_slots(v: &mut Vec<VInsn>, hwcprof: bool) {
    let mut i = 0;
    while i < v.len() {
        if !v[i].is_transfer() {
            i += 1;
            continue;
        }
        // The delay slot must currently be an emitted Nop.
        let slot_is_nop = matches!(
            v.get(i + 1),
            Some(VInsn::Real {
                insn: Insn::Nop,
                ..
            })
        );
        if !slot_is_nop {
            i += 1;
            continue;
        }
        // Candidate: the instruction just before the transfer,
        // skipping one cc-setting compare if present.
        let Some(mut j) = i.checked_sub(1) else {
            i += 1;
            continue;
        };
        let mut cmp_pos = None;
        if let VInsn::Real {
            insn: Insn::Alu { cc: true, .. },
            ..
        } = v[j]
        {
            cmp_pos = Some(j);
            match j.checked_sub(1) {
                Some(k) => j = k,
                None => {
                    i += 1;
                    continue;
                }
            }
        }
        #[allow(clippy::nonminimal_bool)]
        let legal = {
            let VInsn::Real {
                insn: cand, reloc, ..
            } = &v[j]
            else {
                i += 1;
                continue; // label or branch: different basic block
            };
            let cand = *cand;
            let mut ok = !matches!(cand, Insn::Nop | Insn::Trap { .. } | Insn::Sethi { .. })
                && !cand.is_delayed_transfer()
                && !matches!(cand, Insn::Alu { cc: true, .. })
                && reloc.is_none()
                && !(hwcprof && cand.is_memory_ref());
            // Candidate must not itself be a delay slot.
            if ok && j > 0 && v[j - 1].is_transfer() {
                ok = false;
            }
            // The intervening compare and an indirect jump must not
            // read the candidate's destination.
            if ok {
                if let Some(d) = cand.dest_reg() {
                    if let Some(cp) = cmp_pos {
                        if let VInsn::Real {
                            insn: Insn::Alu { rs1, op2, .. },
                            ..
                        } = v[cp]
                        {
                            if rs1 == d || op2.reg() == Some(d) {
                                ok = false;
                            }
                        }
                    }
                    if let VInsn::Real {
                        insn: Insn::Jmpl { rs1, op2, .. },
                        ..
                    } = v[i]
                    {
                        if rs1 == d || op2.reg() == Some(d) {
                            ok = false;
                        }
                    }
                }
            }
            ok
        };
        if !legal {
            i += 1;
            continue;
        }
        // Hoist: remove the candidate and place it in the slot. After
        // removal every index from `j` on shifts down by one: the
        // transfer is at `i - 1` and its slot at `i`.
        let cand = v.remove(j);
        v[i] = cand;
        // Continue after the slot.
    }
}

/// Resolve labels, drop removable nops, emit final instructions and
/// metadata into the module.
fn resolve(v: Vec<VInsn>, out: &mut ObjModule) -> Result<()> {
    // First pass: assign final indices (labels occupy no space).
    let mut label_pos = std::collections::HashMap::new();
    let mut idx = out.insns.len();
    for vi in &v {
        match vi {
            VInsn::Label(l) => {
                label_pos.insert(*l, idx);
            }
            _ => idx += 1,
        }
    }
    // Second pass: emit.
    let mut referenced = std::collections::HashSet::new();
    for vi in &v {
        match vi {
            VInsn::Label(_) => {}
            VInsn::Real {
                insn,
                line,
                desc,
                reloc,
            } => {
                if let Some(r) = reloc {
                    out.relocs.push((out.insns.len(), r.clone()));
                }
                out.insns.push(*insn);
                out.metas.push(PcMeta {
                    line: *line,
                    memdesc: desc.clone(),
                    is_branch_target: false,
                });
            }
            VInsn::Br { cond, label, line } => {
                let target = *label_pos.get(label).expect("branch to undefined label");
                referenced.insert(*label);
                let disp = target as i64 - out.insns.len() as i64;
                out.insns.push(Insn::Branch {
                    cond: *cond,
                    annul: false,
                    // Backward branches predicted taken (loops).
                    pred_taken: disp < 0,
                    disp: disp as i32,
                });
                out.metas.push(PcMeta {
                    line: *line,
                    memdesc: MemDesc::None,
                    is_branch_target: false,
                });
            }
        }
    }
    // Mark branch targets (only labels actually referenced by
    // branches; function entries are marked at link time).
    for l in referenced {
        let pos = label_pos[&l];
        if pos < out.metas.len() {
            out.metas[pos].is_branch_target = true;
        }
    }
    Ok(())
}
